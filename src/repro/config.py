"""Global configuration objects shared across the library.

Two configuration dataclasses are defined here:

* :class:`GlobalParams` — the FL global parameters ``(B, E, K)`` that the paper's Table 5
  sweeps (settings S1–S4).  These are chosen by the FL service provider and stay fixed for
  the lifetime of a training job.
* :class:`SimulationConfig` — everything describing the emulated edge-cloud deployment:
  fleet size and tier mix, the maximum number of aggregation rounds, the target accuracy
  used to detect convergence, and the random seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.registry import SETTINGS as SETTINGS_REGISTRY

#: Paper Table 5 — global parameter settings used throughout the evaluation.
GLOBAL_PARAMETER_SETTINGS: dict[str, tuple[int, int, int]] = {
    "S1": (32, 10, 20),
    "S2": (32, 5, 20),
    "S3": (16, 5, 20),
    "S4": (16, 5, 10),
}

for _name, (_batch, _epochs, _participants) in GLOBAL_PARAMETER_SETTINGS.items():
    SETTINGS_REGISTRY.add(
        _name,
        # Late-bound via the default argument; see GlobalParams.from_setting.
        lambda _key=_name: GlobalParams.from_setting(_key),
        summary=f"B = {_batch}, E = {_epochs}, K = {_participants} (paper Table 5).",
    )

#: Paper Section 5.1 — fleet composition of the 200-device testbed.
DEFAULT_TIER_COUNTS: dict[str, int] = {"high": 30, "mid": 70, "low": 100}


@dataclass(frozen=True)
class GlobalParams:
    """FL global parameters ``(B, E, K)`` as defined by FedAvg.

    Attributes
    ----------
    batch_size:
        Local minibatch size ``B`` used by every participant.
    local_epochs:
        Number of local epochs ``E`` each participant trains before uploading gradients.
    num_participants:
        Number of participant devices ``K`` selected each aggregation round.
    """

    batch_size: int = 16
    local_epochs: int = 5
    num_participants: int = 20

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.local_epochs <= 0:
            raise ConfigurationError(f"local_epochs must be positive, got {self.local_epochs}")
        if self.num_participants <= 0:
            raise ConfigurationError(
                f"num_participants must be positive, got {self.num_participants}"
            )

    @classmethod
    def from_setting(cls, name: str) -> "GlobalParams":
        """Build the global parameters for one of the paper's settings ``S1``–``S4``."""
        key = name.upper()
        if key not in GLOBAL_PARAMETER_SETTINGS:
            raise ConfigurationError(
                f"unknown global parameter setting {name!r}; "
                f"expected one of {sorted(GLOBAL_PARAMETER_SETTINGS)}"
            )
        batch_size, local_epochs, num_participants = GLOBAL_PARAMETER_SETTINGS[key]
        return cls(
            batch_size=batch_size,
            local_epochs=local_epochs,
            num_participants=num_participants,
        )

    def as_tuple(self) -> tuple[int, int, int]:
        """Return ``(B, E, K)`` as a plain tuple."""
        return (self.batch_size, self.local_epochs, self.num_participants)


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of the emulated edge-cloud FL deployment.

    Attributes
    ----------
    num_devices:
        Total number of devices ``N`` participating in the FL population.
    tier_counts:
        Mapping from tier name (``"high"``, ``"mid"``, ``"low"``) to the number of devices
        of that tier.  Must sum to ``num_devices``.
    max_rounds:
        Upper bound on the number of aggregation rounds to simulate.
    target_accuracy:
        Accuracy threshold used to declare convergence (as a fraction in ``[0, 1]``).
    seed:
        Seed for the simulation-wide :class:`numpy.random.Generator`.
    """

    num_devices: int = 200
    tier_counts: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_TIER_COUNTS))
    max_rounds: int = 200
    target_accuracy: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ConfigurationError(f"num_devices must be positive, got {self.num_devices}")
        if self.max_rounds <= 0:
            raise ConfigurationError(f"max_rounds must be positive, got {self.max_rounds}")
        if not 0.0 < self.target_accuracy <= 1.0:
            raise ConfigurationError(
                f"target_accuracy must be in (0, 1], got {self.target_accuracy}"
            )
        unknown = set(self.tier_counts) - {"high", "mid", "low"}
        if unknown:
            raise ConfigurationError(f"unknown device tiers in tier_counts: {sorted(unknown)}")
        total = sum(self.tier_counts.values())
        if total != self.num_devices:
            raise ConfigurationError(
                f"tier_counts sum to {total} but num_devices is {self.num_devices}"
            )

    @classmethod
    def small(cls, num_devices: int = 20, seed: int = 0) -> "SimulationConfig":
        """A scaled-down configuration (same tier proportions) for tests and examples."""
        high = max(1, round(num_devices * 0.15))
        mid = max(1, round(num_devices * 0.35))
        low = num_devices - high - mid
        if low < 1:
            raise ConfigurationError("num_devices too small to represent all three tiers")
        return cls(
            num_devices=num_devices,
            tier_counts={"high": high, "mid": mid, "low": low},
            max_rounds=100,
            target_accuracy=0.95,
            seed=seed,
        )
