"""Setuptools entry point.

All project metadata lives in ``pyproject.toml``; this shim exists so that editable
installs also work on environments whose pip/setuptools predate PEP 660 support
(``python setup.py develop`` or legacy ``pip install -e .``).
"""

from setuptools import setup

setup()
