"""Pytest bootstrap: make the ``src`` layout importable without an installed package.

``pip install -e .`` is the supported workflow; this fallback keeps the test and benchmark
suites runnable in minimal environments (e.g. offline CI images without the ``wheel``
package needed for PEP 660 editable installs).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
