#!/usr/bin/env python3
"""Data-heterogeneity study (paper Figures 6 and 11).

Sweeps the four data distributions of the paper — Ideal IID and Non-IID(50/75/100 %) — and
shows how random participant selection degrades (and eventually fails to converge) while
AutoFL keeps selecting devices with useful data.

Run with:  python examples/data_heterogeneity_study.py
"""

from repro.experiments.harness import run_policy_comparison
from repro.experiments.reporting import format_table
from repro.sim.scenarios import ScenarioSpec

DISTRIBUTIONS = ("iid", "non_iid_50", "non_iid_75", "non_iid_100")


def main() -> None:
    rows_out = []
    for distribution in DISTRIBUTIONS:
        spec = ScenarioSpec(
            workload="cnn-mnist",
            setting="S3",
            num_devices=200,
            data_distribution=distribution,
            max_rounds=300,
            seed=4,
        )
        results, rows = run_policy_comparison(
            spec, policies=("fedavg-random", "autofl"), max_rounds=300
        )
        by_name = {row.policy: row for row in rows}
        random_summary = results["fedavg-random"].summary()
        rows_out.append(
            [
                distribution,
                "yes" if random_summary.converged else "no",
                random_summary.final_accuracy,
                by_name["autofl"].converged,
                by_name["autofl"].final_accuracy,
                by_name["autofl"].ppw_global,
            ]
        )
    headers = [
        "distribution",
        "random converged",
        "random accuracy",
        "autofl converged",
        "autofl accuracy",
        "autofl PPW gain",
    ]
    print("Impact of data heterogeneity on FedAvg-Random vs AutoFL\n")
    print(format_table(headers, rows_out))


if __name__ == "__main__":
    main()
