#!/usr/bin/env python3
"""Data-heterogeneity study (paper Figures 6 and 11).

Sweeps the four data distributions of the paper — Ideal IID and Non-IID(50/75/100 %) — and
shows how random participant selection degrades (and eventually fails to converge) while
AutoFL keeps selecting devices with useful data.

The whole study is one declarative grid (distribution x policy) executed by the
:class:`BatchRunner`; re-running the script serves every point from the spec-hash cache.

Run with:  python examples/data_heterogeneity_study.py
"""

from repro import BatchRunner, ExperimentSpec, ResultStore, ScenarioSpec, Sweep
from repro.experiments.reporting import format_table

DISTRIBUTIONS = ("iid", "non_iid_50", "non_iid_75", "non_iid_100")


def main() -> None:
    base = ExperimentSpec(
        scenario=ScenarioSpec(
            workload="cnn-mnist",
            setting="S3",
            num_devices=200,
            max_rounds=300,
            seed=4,
        ),
        policy="fedavg-random",
    )
    sweep = Sweep(
        base,
        data_distribution=DISTRIBUTIONS,
        policy=("fedavg-random", "autofl"),
    )
    runner = BatchRunner(store=ResultStore(".repro-results/data-heterogeneity.jsonl"))
    report = runner.run(sweep)
    by_point = {
        (result.spec.scenario.data_distribution, result.spec.policy): result
        for result in report.results
    }

    rows_out = []
    for distribution in DISTRIBUTIONS:
        random_result = by_point[(distribution, "fedavg-random")]
        autofl_result = by_point[(distribution, "autofl")]
        rows_out.append(
            [
                distribution,
                random_result.convergence_rate > 0,
                random_result.mean_final_accuracy,
                autofl_result.convergence_rate > 0,
                autofl_result.mean_final_accuracy,
                random_result.mean_global_energy_j / autofl_result.mean_global_energy_j,
            ]
        )
    headers = [
        "distribution",
        "random converged",
        "random accuracy",
        "autofl converged",
        "autofl accuracy",
        "autofl PPW gain",
    ]
    print("Impact of data heterogeneity on FedAvg-Random vs AutoFL\n")
    print(format_table(headers, rows_out))
    print(
        f"\n({report.cache_hits} of {report.total} grid points served from the result cache)"
    )


if __name__ == "__main__":
    main()
