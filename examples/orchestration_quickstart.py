#!/usr/bin/env python3
"""Orchestration quickstart: submit jobs, drain them with a worker pool, inspect state.

This drives the service subsystem entirely through the Python API (the CLI equivalents
are ``python -m repro {submit,serve,status,watch}``): a priority job and a sweep job go
into a durable on-disk queue, a two-worker scheduler drains them into a shared
SQLite-indexed store, and a resubmission of the same spec completes as a pure cache
hit — no re-execution.

Run with:  python examples/orchestration_quickstart.py
"""

import tempfile
from pathlib import Path

from repro import ExperimentSpec, ScenarioSpec, Scheduler, Sweep, make_job, open_store
from repro.service import EventLog, JobQueue


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-orchestration-"))
    queue = JobQueue(workdir / "queue")
    store = open_store(workdir / "results.sqlite")
    events = EventLog(workdir / "events.jsonl", echo=True)

    base = ExperimentSpec(
        scenario=ScenarioSpec(num_devices=50, max_rounds=20), policy="fedavg-random"
    )
    urgent = make_job(base, label="urgent-single", priority=10)
    sweep = make_job(
        Sweep(base, policy=["fedavg-random", "autofl"]), label="policy-sweep", retry_budget=1
    )
    queue.submit(urgent)
    queue.submit(sweep)
    print(f"submitted {urgent.job_id} (priority 10) and {sweep.job_id} (2 grid points)\n")

    Scheduler(queue, store, events).serve(workers=2, drain=True)

    print("\njob states after the drain:")
    for job in queue.jobs():
        print(
            f"  {job.job_id}  {job.state.value:<9} label={job.label!r} "
            f"cache_hits={job.cache_hits} executed={job.executed}"
        )

    # Resubmit the urgent spec: the store already holds its hash, so the scheduler
    # serves it without running a single round.
    rerun = make_job(base, label="urgent-again")
    queue.submit(rerun)
    Scheduler(queue, store, events).serve(workers=1, drain=True)
    finished = queue.get(rerun.job_id)
    print(
        f"\nresubmission {finished.job_id}: state={finished.state.value}, "
        f"cache_hits={finished.cache_hits}, executed={finished.executed} "
        f"(store holds {len(store)} results at {workdir})"
    )


if __name__ == "__main__":
    main()
