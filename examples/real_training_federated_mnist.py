#!/usr/bin/env python3
"""Real federated training with the numpy neural-network backend.

Instead of the fast surrogate convergence model, this example runs genuine local SGD on
per-device shards of a synthetic MNIST-like dataset with the from-scratch numpy CNN, while
the edge-cloud simulator still accounts per-round time and energy.  It demonstrates the full
FedAvg pipeline (broadcast, local training, aggregation, evaluation) end to end.

Run with:  python examples/real_training_federated_mnist.py
"""

import numpy as np

from repro.config import GlobalParams
from repro.core.selection import RandomPolicy
from repro.data.datasets import make_synthetic_mnist
from repro.data.federated import FederatedDataset
from repro.data.profiles import profiles_from_federated_dataset
from repro.fl.aggregation import FedAvgAggregator
from repro.fl.server import NumpyTrainingBackend
from repro.nn.models import build_cnn_mnist
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec


def main() -> None:
    rng = np.random.default_rng(0)
    train = make_synthetic_mnist(num_samples=1200, seed=0)
    test = make_synthetic_mnist(num_samples=300, seed=99)

    spec = ScenarioSpec(num_devices=20, setting="S4", seed=0)
    config = spec.simulation_config()
    federated = FederatedDataset.partition(
        train, config.num_devices, "non_iid_50", rng, device_ids=list(range(config.num_devices))
    )
    environment = EdgeCloudEnvironment(
        config=config,
        global_params=GlobalParams(batch_size=16, local_epochs=1, num_participants=5),
        workload="cnn-mnist",
        data_profiles=profiles_from_federated_dataset(federated),
    )
    backend = NumpyTrainingBackend(
        model=build_cnn_mnist(),
        federated_dataset=federated,
        aggregator=FedAvgAggregator(),
        global_params=environment.global_params,
        test_features=test.features,
        test_labels=test.labels,
        learning_rate=0.1,
        rng=rng,
    )
    print(f"Initial test accuracy: {backend.accuracy:.3f}")

    simulation = FLSimulation(
        environment,
        RandomPolicy(rng=np.random.default_rng(1)),
        backend,
        max_rounds=8,
        target_accuracy=0.97,
    )
    result = simulation.run()
    for record in result.records:
        print(
            f"round {record.round_index:2d}: accuracy={record.accuracy:.3f} "
            f"round_time={record.round_time_s:6.1f}s "
            f"participant_energy={record.participant_energy_j:7.1f}J"
        )
    print(
        f"\nFinal accuracy {result.final_accuracy:.3f} after {result.num_rounds} rounds; "
        f"total cluster energy {result.total_global_energy_j:.0f} J."
    )


if __name__ == "__main__":
    main()
