#!/usr/bin/env python3
"""Runtime-variance study (paper Figures 5 and 10).

Compares the Table 4 cluster templates (C0-C7) and the selection policies under three
execution environments: no runtime variance, heavy on-device interference, and a weak
network.  The optimal cluster shifts with the environment, and AutoFL adapts automatically.

Run with:  python examples/runtime_variance_study.py
"""

from dataclasses import replace

from repro.experiments.harness import run_cluster_sweep, run_policy_comparison
from repro.experiments.reporting import format_table
from repro.sim.scenarios import ScenarioSpec

SCENARIOS = {
    "ideal": dict(interference="none", network="stable"),
    "interference": dict(interference="heavy", network="stable"),
    "weak-network": dict(interference="none", network="weak"),
}


def main() -> None:
    print("Cluster characterisation (global PPW normalised to FedAvg-Random, CNN-MNIST S3)\n")
    sweep_rows = []
    for name, overrides in SCENARIOS.items():
        spec = ScenarioSpec(workload="cnn-mnist", setting="S3", num_devices=200, seed=2, **overrides)
        ppw = run_cluster_sweep(spec, rounds=12)
        best = max(ppw, key=ppw.get)
        sweep_rows.append([name] + [ppw[f"C{i}"] for i in range(8)] + [best])
    headers = ["scenario"] + [f"C{i}" for i in range(8)] + ["best"]
    print(format_table(headers, sweep_rows))

    print("\nPolicy comparison under each environment (Non-IID(50 %) data)\n")
    base = ScenarioSpec(
        workload="cnn-mnist",
        setting="S3",
        num_devices=100,
        data_distribution="non_iid_50",
        max_rounds=250,
        seed=13,
    )
    policy_rows = []
    for name, overrides in SCENARIOS.items():
        spec = replace(base, **overrides)
        _results, rows = run_policy_comparison(
            spec, policies=("fedavg-random", "performance", "autofl", "ofl"), max_rounds=250
        )
        for row in rows:
            policy_rows.append([name, row.policy, row.ppw_global, row.convergence_speedup, row.final_accuracy])
    print(format_table(["scenario", "policy", "PPW", "speedup", "accuracy"], policy_rows))


if __name__ == "__main__":
    main()
