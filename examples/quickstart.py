#!/usr/bin/env python3
"""Quickstart: run AutoFL against the FedAvg-Random baseline on one scenario.

This builds the default emulated deployment (heterogeneous device fleet, variable network,
moderate co-running interference, Non-IID(50 %) data), trains CNN-MNIST with both policies
using the fast surrogate training backend, and prints the normalised comparison table.

Run with:  python examples/quickstart.py
"""

from repro import run_policy_comparison
from repro.experiments.reporting import format_comparison


def main() -> None:
    rows = run_policy_comparison(
        policies=("fedavg-random", "power", "performance", "autofl"),
        workload="cnn-mnist",
        setting="S3",
        interference="moderate",
        network="variable",
        data_distribution="non_iid_50",
        num_devices=100,
        rounds=200,
        seed=0,
    )
    print("AutoFL vs baselines (normalised to FedAvg-Random)\n")
    print(format_comparison(rows))
    autofl = next(row for row in rows if row.policy == "autofl")
    print(
        f"\nAutoFL improved cluster-wide energy efficiency by {autofl.ppw_global:.2f}x "
        f"while reaching {autofl.final_accuracy:.1%} accuracy."
    )


if __name__ == "__main__":
    main()
