"""End-to-end orchestration: submit → serve → status, cache hits and store migration.

This mirrors the CI smoke job (and the issue's acceptance criteria) in-process:
a scenario-preset job and a sweep drain through a two-worker scheduler, ``status``
reports everything ``done``, resubmitting the same spec is a pure store cache hit,
and a legacy JSONL store migrated to SQLite keeps serving its hashes.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import BatchRunner, ResultStore
from repro.experiments.spec import ExperimentSpec
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec, get_scenario_preset


def _run(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out


@pytest.fixture
def svc(tmp_path):
    return ["--root", str(tmp_path / "service"), "--store", str(tmp_path / "results.sqlite")]


@pytest.fixture
def scenario_flags():
    # The flaky-fleet preset scaled down for test speed; flags override preset fields.
    return ["--scenario", "flaky-fleet", "--devices", "25", "--rounds", "4",
            "--policy", "fedavg-random"]


def _status(capsys, svc):
    code, out = _run(["status", "--json", "--root", svc[1]], capsys)
    assert code == 0
    return json.loads(out)


class TestSubmitServeStatus:
    def test_full_cycle_with_cache_hit_on_resubmit(
        self, capsys, svc, scenario_flags, tmp_path
    ):
        root = ["--root", str(tmp_path / "service")]
        store_flag = ["--store", str(tmp_path / "results.sqlite")]

        # Submit a preset job and a sweep job.
        code, out = _run(["submit", *scenario_flags, "--priority", "5", *root], capsys)
        assert code == 0
        preset_job = out.split()[1].rstrip(":")
        code, out = _run(
            ["submit", "--axis", "policy=fedavg-random,performance",
             "--devices", "25", "--rounds", "4", *root],
            capsys,
        )
        assert code == 0
        sweep_job = out.split()[1].rstrip(":")

        # Drain with two workers.
        code, _out = _run(["serve", "--workers", "2", "--drain", "--quiet",
                           *root, *store_flag], capsys)
        assert code == 0

        payload = _status(capsys, root)
        states = {job["job_id"]: job for job in payload["jobs"]}
        assert states[preset_job]["state"] == "done"
        assert states[sweep_job]["state"] == "done"
        assert states[preset_job]["executed"] == 1
        assert states[sweep_job]["executed"] == 2
        assert payload["counts"]["done"] == 2

        # The shared store now holds all three executed grid points.
        store = ArtifactStore(tmp_path / "results.sqlite")
        assert len(store) == 3

        # Resubmitting the same preset spec is a pure cache hit: no re-execution.
        code, out = _run(["submit", *scenario_flags, *root], capsys)
        assert code == 0
        resubmitted = out.split()[1].rstrip(":")
        code, _out = _run(["serve", "--drain", "--quiet", *root, *store_flag], capsys)
        assert code == 0
        job = _status(capsys, root)["jobs"]
        job = next(j for j in job if j["job_id"] == resubmitted)
        assert job["state"] == "done"
        assert (job["cache_hits"], job["executed"]) == (1, 0)
        assert len(ArtifactStore(tmp_path / "results.sqlite")) == 3  # nothing new


class TestMigratedStoreServesTheScheduler:
    def test_jsonl_history_survives_into_the_service_era(self, capsys, tmp_path):
        # Yesterday: a foreground sweep cached its points in the flat JSONL store.
        spec = ExperimentSpec(
            scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=3),
            policy="fedavg-random",
        )
        legacy = ResultStore(tmp_path / "results.jsonl")
        report = BatchRunner(store=legacy).run([spec])
        assert report.executed == 1

        # Today: the same spec submitted to the service, whose SQLite store migrates
        # the legacy sibling on first open — the job must be a cache hit.
        root = ["--root", str(tmp_path / "service")]
        code, out = _run(
            ["submit", "--devices", "25", "--rounds", "4", "--seed", "3",
             "--policy", "fedavg-random", *root],
            capsys,
        )
        assert code == 0
        job_id = out.split()[1].rstrip(":")
        code, _out = _run(
            ["serve", "--drain", "--quiet", *root,
             "--store", str(tmp_path / "results.sqlite")],
            capsys,
        )
        assert code == 0
        payload = _status(capsys, root)
        (job,) = [j for j in payload["jobs"] if j["job_id"] == job_id]
        assert job["state"] == "done"
        assert (job["cache_hits"], job["executed"]) == (1, 0)
        # And the migrated row is byte-faithful: same spec hash, same summaries.
        migrated = ArtifactStore(tmp_path / "results.sqlite").get(spec)
        assert migrated is not None
        assert migrated.summaries == report.results[0].summaries


class TestPresetColumn:
    def test_preset_recorded_in_the_store_index(self, capsys, tmp_path, scenario_flags):
        root = ["--root", str(tmp_path / "service")]
        store_path = tmp_path / "results.sqlite"
        _run(["submit", *scenario_flags, *root], capsys)
        _run(["serve", "--drain", "--quiet", *root, "--store", str(store_path)], capsys)
        store = ArtifactStore(store_path)
        with store._connection() as conn:
            (preset,) = conn.execute("SELECT preset FROM results").fetchone()
        assert preset == "flaky-fleet"

    def test_preset_matches_registered_scenario(self):
        # Guard: the preset names used across the service tests stay registered.
        assert get_scenario_preset("flaky-fleet").dropout_rate > 0
