"""Seeded determinism of every shipped scenario preset.

Two runs of the same preset with the same seed must produce *byte-identical*
:class:`~repro.sim.results.SimulationResult` serialisations — the property the golden
store and the result cache both rest on — and a different seed must actually move the
trajectory (a constant serialisation would also pass the first check).
"""

import dataclasses
import functools

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.registry import SCENARIOS
from repro.sim.scenarios import get_scenario_preset

#: Rounds per determinism run: enough for selection, faults, churn and availability to
#: all draw from their streams, small enough to keep 10k-device presets quick.
DETERMINISM_ROUNDS = 3

SHIPPED_PRESETS = tuple(SCENARIOS.names())


def _preset_spec(preset: str, seed: int) -> ExperimentSpec:
    scenario = dataclasses.replace(
        get_scenario_preset(preset), max_rounds=DETERMINISM_ROUNDS, seed=seed
    )
    return ExperimentSpec(
        scenario=scenario, policy="autofl", n_seeds=1, stop_at_convergence=False
    )


def _serialised_run(preset: str, seed: int) -> str:
    return build_simulation(_preset_spec(preset, seed)).run().to_json()


@functools.lru_cache(maxsize=None)
def _cached_run(preset: str, seed: int) -> str:
    # The different-seed comparison reuses the seed-0 trajectory; determinism itself is
    # asserted on two genuinely independent runs, never through this cache.
    return _serialised_run(preset, seed)


class TestShippedPresetDeterminism:
    def test_all_shipped_presets_are_covered(self):
        # Guards the parametrisation below against silently missing a new preset.
        assert set(SHIPPED_PRESETS) >= {
            "paper-200",
            "fleet-1k",
            "fleet-10k",
            "diurnal-1k",
            "flaky-fleet",
            "churn-heavy",
        }

    @pytest.mark.parametrize("preset", SHIPPED_PRESETS)
    def test_same_seed_is_byte_identical(self, preset):
        first = _serialised_run(preset, seed=0)
        second = _cached_run(preset, seed=0)
        assert first == second

    @pytest.mark.parametrize("preset", SHIPPED_PRESETS)
    def test_different_seed_differs(self, preset):
        assert _cached_run(preset, seed=0) != _serialised_run(preset, seed=1)
