"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.config import GlobalParams
from repro.data.datasets import make_synthetic_mnist
from repro.data.federated import FederatedDataset
from repro.data.profiles import profiles_from_federated_dataset
from repro.experiments.harness import run_policy_comparison, run_simulation
from repro.fl.aggregation import FedAvgAggregator
from repro.fl.server import NumpyTrainingBackend
from repro.nn.models import build_cnn_mnist
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment
from repro.core.selection import RandomPolicy, make_policy


class TestSurrogatePipeline:
    def test_autofl_beats_random_under_heterogeneity(self):
        """The headline qualitative claim: AutoFL is more energy-efficient than random
        selection when data heterogeneity and runtime variance are present."""
        spec = ScenarioSpec(
            workload="cnn-mnist",
            setting="S3",
            num_devices=100,
            data_distribution="non_iid_50",
            interference="moderate",
            network="variable",
            max_rounds=150,
            seed=1,
        )
        _results, rows = run_policy_comparison(
            spec, policies=("fedavg-random", "autofl"), max_rounds=150
        )
        by_name = {row.policy: row for row in rows}
        assert by_name["autofl"].ppw_global > 1.1
        assert by_name["autofl"].final_accuracy >= by_name["fedavg-random"].final_accuracy - 0.02

    def test_oracle_is_upper_bound_for_baselines(self):
        spec = ScenarioSpec(
            workload="cnn-mnist",
            setting="S3",
            num_devices=100,
            data_distribution="non_iid_50",
            max_rounds=150,
            seed=2,
        )
        _results, rows = run_policy_comparison(
            spec, policies=("fedavg-random", "power", "ofl"), max_rounds=150
        )
        by_name = {row.policy: row for row in rows}
        assert by_name["ofl"].ppw_global > by_name["power"].ppw_global
        assert by_name["ofl"].ppw_global > by_name["fedavg-random"].ppw_global

    def test_all_policies_complete_a_short_run(self):
        spec = ScenarioSpec(num_devices=30, setting="S4", max_rounds=8, seed=0)
        for policy in ("fedavg-random", "power", "performance", "cluster-c3", "oparticipant", "ofl", "autofl"):
            result = run_simulation(spec, policy, max_rounds=8, stop_at_convergence=False)
            assert result.num_rounds == 8
            assert result.total_global_energy_j > 0


class TestNumpyPipeline:
    def test_real_fl_training_with_simulated_systems(self, rng):
        """Run the full loop with genuine numpy gradient training as the backend."""
        dataset = make_synthetic_mnist(num_samples=360, seed=0)
        test = make_synthetic_mnist(num_samples=120, seed=5)
        spec = ScenarioSpec(num_devices=12, setting="S4", seed=0)
        config = spec.simulation_config()
        federated = FederatedDataset.partition(
            dataset, config.num_devices, "iid", rng, device_ids=list(range(config.num_devices))
        )
        profiles = profiles_from_federated_dataset(federated)
        environment = EdgeCloudEnvironment(
            config=config,
            global_params=GlobalParams(batch_size=16, local_epochs=1, num_participants=4),
            workload="cnn-mnist",
            data_profiles=profiles,
        )
        backend = NumpyTrainingBackend(
            model=build_cnn_mnist(),
            federated_dataset=federated,
            aggregator=FedAvgAggregator(),
            global_params=environment.global_params,
            test_features=test.features,
            test_labels=test.labels,
            learning_rate=0.1,
            rng=rng,
        )
        initial_accuracy = backend.accuracy
        simulation = FLSimulation(
            environment,
            RandomPolicy(rng=np.random.default_rng(0)),
            backend,
            max_rounds=3,
            target_accuracy=0.99,
        )
        result = simulation.run()
        assert result.num_rounds == 3
        assert result.final_accuracy > initial_accuracy - 0.05
        assert result.total_global_energy_j > 0


class TestPolicyReproducibility:
    @pytest.mark.parametrize("policy_name", ["autofl", "ofl"])
    def test_identical_seeds_give_identical_runs(self, policy_name):
        spec = ScenarioSpec(num_devices=30, setting="S4", max_rounds=10, seed=9)

        def run_once():
            environment = build_environment(spec)
            from repro.sim.scenarios import build_surrogate_backend

            backend = build_surrogate_backend(environment)
            policy = make_policy(policy_name, rng=np.random.default_rng(42))
            return FLSimulation(
                environment, policy, backend, max_rounds=10, stop_at_convergence=False
            ).run()

        first = run_once()
        second = run_once()
        assert first.selection_history() == second.selection_history()
        assert first.total_global_energy_j == pytest.approx(second.total_global_energy_j)
