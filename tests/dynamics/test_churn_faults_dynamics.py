"""Tests for churn, fault injection and the FleetDynamics facade / DynamicsSpec."""

import numpy as np
import pytest

from repro.dynamics import DynamicsSpec, FleetDynamics
from repro.dynamics.availability import BernoulliAvailability
from repro.dynamics.churn import ChurnEvent, ChurnModel
from repro.dynamics.faults import DeviceFault, FaultConfig, FaultDraw, FaultInjector
from repro.exceptions import ConfigurationError, SimulationError


class TestChurnModel:
    def test_membership_shrinks_without_rejoin(self):
        model = ChurnModel(leave_rate=0.2, rejoin_rate=0.0)
        model.reset(500)
        rng = np.random.default_rng(0)
        masks = [model.membership_mask(i, rng) for i in range(10)]
        counts = [int(mask.sum()) for mask in masks]
        assert counts[-1] < counts[0]
        assert all(kind == "leave" for kind in {event.kind for event in model.events})

    def test_events_record_device_ids(self):
        model = ChurnModel(leave_rate=1.0, rejoin_rate=0.0)
        model.reset(3)
        device_ids = np.array([7, 8, 9])
        model.membership_mask(0, np.random.default_rng(0), device_ids)
        assert {event.device_id for event in model.events} == {7, 8, 9}
        assert all(event.round_index == 0 for event in model.events)

    def test_rejoin_brings_devices_back(self):
        model = ChurnModel(leave_rate=1.0, rejoin_rate=1.0)
        model.reset(4)
        rng = np.random.default_rng(0)
        assert not model.membership_mask(0, rng).any()
        assert model.membership_mask(1, rng).all()
        kinds = [event.kind for event in model.events]
        assert kinds.count("leave") == 4 and kinds.count("join") == 4

    def test_use_before_reset_raises(self):
        with pytest.raises(SimulationError, match="reset"):
            ChurnModel().membership_mask(0, np.random.default_rng(0))

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnModel(leave_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChurnEvent(0, 1, "explode")


class TestFaultDraw:
    def test_none_draw_is_benign(self):
        draw = FaultDraw.none(5)
        assert len(draw) == 5
        assert not draw.has_faults

    def test_mapping_roundtrip(self):
        draw = FaultDraw(
            upload_failure=np.array([True, False, False]),
            compute_slowdown=np.array([1.0, 4.0, 1.0]),
        )
        participants = [10, 20, 30]
        mapping = draw.to_mapping(participants)
        assert mapping[10] == DeviceFault(upload_failure=True, compute_slowdown=1.0)
        assert mapping[20] == DeviceFault(upload_failure=False, compute_slowdown=4.0)
        rebuilt = FaultDraw.from_mapping(participants, mapping)
        assert np.array_equal(rebuilt.upload_failure, draw.upload_failure)
        assert np.array_equal(rebuilt.compute_slowdown, draw.compute_slowdown)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(SimulationError):
            FaultDraw(
                upload_failure=np.array([False]), compute_slowdown=np.array([0.5])
            )
        with pytest.raises(ConfigurationError):
            DeviceFault(compute_slowdown=0.9)


class TestFaultInjector:
    def test_per_tier_rates(self):
        config = FaultConfig(dropout_rate=0.0, tier_dropout_rates={"low": 1.0})
        injector = FaultInjector(config)
        rng = np.random.default_rng(0)
        # Tier codes: 0 = high, 1 = mid, 2 = low.
        draw = injector.sample(np.array([0, 1, 2, 2]), rng)
        assert list(draw.upload_failure) == [False, False, True, True]

    def test_slow_faults_apply_factor(self):
        injector = FaultInjector(FaultConfig(slow_fault_rate=1.0, slow_fault_factor=3.0))
        draw = injector.sample(np.array([0, 1, 2]), np.random.default_rng(0))
        assert np.all(draw.compute_slowdown == 3.0)
        assert not draw.upload_failure.any()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(dropout_rate=1.2)
        with pytest.raises(ConfigurationError):
            FaultConfig(slow_fault_factor=1.0)
        with pytest.raises(ConfigurationError, match="unknown tiers"):
            FaultConfig(tier_dropout_rates={"ultra": 0.5})

    def test_trivial_config_detection(self):
        assert FaultConfig().is_trivial
        assert not FaultConfig(dropout_rate=0.1).is_trivial
        assert not FaultConfig(tier_dropout_rates={"low": 0.1}).is_trivial


class TestFleetDynamics:
    def _bound(self, **kwargs) -> FleetDynamics:
        dynamics = FleetDynamics(**kwargs)
        dynamics.bind(
            num_devices=30,
            tier_codes=np.zeros(30, dtype=np.int64),
            device_ids=np.arange(30),
            seed=5,
        )
        return dynamics

    def test_default_is_always_on(self):
        dynamics = self._bound()
        assert dynamics.online_mask(0).all()
        assert not dynamics.has_faults
        assert dynamics.sample_faults(0, np.arange(5)) is None
        assert dynamics.online_history == [30]

    def test_min_online_floor(self):
        # p_online so low that some rounds would otherwise have zero devices.
        dynamics = FleetDynamics(
            availability=BernoulliAvailability(p_online=0.01), min_online=3
        )
        dynamics.bind(
            num_devices=20,
            tier_codes=np.zeros(20, dtype=np.int64),
            device_ids=np.arange(20),
            seed=0,
        )
        for round_index in range(30):
            assert dynamics.online_mask(round_index).sum() >= 3

    def test_unbound_usage_raises(self):
        with pytest.raises(SimulationError, match="bind"):
            FleetDynamics().online_mask(0)

    def test_deterministic_streams_per_seed(self):
        def history(seed):
            dynamics = FleetDynamics(availability=BernoulliAvailability(0.7))
            dynamics.bind(
                num_devices=40,
                tier_codes=np.zeros(40, dtype=np.int64),
                device_ids=np.arange(40),
                seed=seed,
            )
            return [dynamics.online_mask(i) for i in range(6)]

        assert all(np.array_equal(a, b) for a, b in zip(history(3), history(3)))
        assert any(
            not np.array_equal(a, b) for a, b in zip(history(3), history(4))
        )


class TestDynamicsSpec:
    def test_default_spec_is_trivial(self):
        spec = DynamicsSpec()
        assert spec.is_trivial
        assert spec.build() is None

    def test_alias_still_trivial(self):
        assert DynamicsSpec(availability="static").is_trivial

    def test_non_trivial_builds_components(self):
        spec = DynamicsSpec(
            availability="markov", churn_rate=0.05, dropout_rate=0.1
        )
        dynamics = spec.build()
        assert dynamics is not None
        assert dynamics.availability.name == "markov"
        assert dynamics.churn is not None
        assert dynamics.has_faults

    def test_tier_rates_alone_enable_faults(self):
        spec = DynamicsSpec(tier_dropout_rates={"low": 0.2})
        assert not spec.is_trivial
        assert spec.build().has_faults

    def test_unknown_availability_rejected_early(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            DynamicsSpec(availability="diurnall")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicsSpec(churn_rate=2.0)
        with pytest.raises(ConfigurationError):
            DynamicsSpec(dropout_rate=-0.1)
