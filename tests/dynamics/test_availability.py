"""Tests for the availability processes, the AVAILABILITY registry and traces."""

import numpy as np
import pytest

from repro.dynamics.availability import (
    AlwaysOnAvailability,
    AvailabilityTrace,
    BernoulliAvailability,
    DiurnalAvailability,
    MarkovAvailability,
    TraceAvailability,
    generate_trace,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import AVAILABILITY


class TestRegistry:
    def test_builtin_processes_registered(self):
        names = AVAILABILITY.names()
        for name in ("always-on", "bernoulli", "markov", "diurnal", "trace"):
            assert name in names

    def test_create_by_alias(self):
        assert isinstance(AVAILABILITY.create("static"), AlwaysOnAvailability)
        assert isinstance(AVAILABILITY.create("day-night"), DiurnalAvailability)

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'diurnal'"):
            AVAILABILITY.entry("diurnall")


class TestAlwaysOn:
    def test_everyone_online_without_rng_consumption(self):
        process = AlwaysOnAvailability()
        process.reset(10)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        mask = process.online_mask(0, rng)
        assert mask.all() and len(mask) == 10
        assert rng.bit_generator.state == before  # No draws: trajectories untouched.

    def test_use_before_reset_raises(self):
        with pytest.raises(SimulationError, match="reset"):
            AlwaysOnAvailability().online_mask(0, np.random.default_rng(0))


class TestBernoulli:
    def test_rate_is_respected(self):
        process = BernoulliAvailability(p_online=0.6)
        process.reset(2_000)
        rng = np.random.default_rng(3)
        fraction = np.mean([process.online_mask(i, rng).mean() for i in range(20)])
        assert fraction == pytest.approx(0.6, abs=0.03)

    def test_deterministic_per_seed(self):
        masks = []
        for _ in range(2):
            process = BernoulliAvailability(p_online=0.5)
            process.reset(50)
            rng = np.random.default_rng(7)
            masks.append(np.stack([process.online_mask(i, rng) for i in range(5)]))
        assert np.array_equal(masks[0], masks[1])

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BernoulliAvailability(p_online=0.0)
        with pytest.raises(ConfigurationError):
            BernoulliAvailability(p_online=1.5)


class TestMarkov:
    def test_stationary_fraction(self):
        process = MarkovAvailability(p_drop=0.1, p_return=0.4)
        assert process.stationary_online_fraction == pytest.approx(0.8)
        process.reset(1_000)
        rng = np.random.default_rng(0)
        fraction = np.mean([process.online_mask(i, rng).mean() for i in range(50)])
        assert fraction == pytest.approx(0.8, abs=0.05)

    def test_state_is_sticky(self):
        # With tiny transition probabilities consecutive masks barely change.
        process = MarkovAvailability(p_drop=0.01, p_return=0.01)
        process.reset(500)
        rng = np.random.default_rng(1)
        first = process.online_mask(0, rng)
        second = process.online_mask(1, rng)
        assert np.mean(first == second) > 0.95

    def test_reset_clears_state(self):
        process = MarkovAvailability()
        process.reset(20)
        process.online_mask(0, np.random.default_rng(0))
        process.reset(20)
        mask = process.online_mask(0, np.random.default_rng(0))
        assert len(mask) == 20

    def test_degenerate_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovAvailability(p_drop=0.0, p_return=0.0)


class TestDiurnal:
    def test_probability_oscillates_with_period(self):
        process = DiurnalAvailability(
            mean_online=0.6, amplitude=0.35, period_rounds=24, phase_spread=0.0
        )
        process.reset(4_000)
        rng = np.random.default_rng(5)
        fractions = [process.online_mask(i, rng).mean() for i in range(24)]
        assert max(fractions) > 0.85
        assert min(fractions) < 0.35
        # One period later the probability repeats.
        process_check = DiurnalAvailability(
            mean_online=0.6, amplitude=0.35, period_rounds=24, phase_spread=0.0
        )
        process_check.reset(10)
        process_check.online_mask(0, np.random.default_rng(0))
        assert np.allclose(
            process_check.online_probability(3), process_check.online_probability(27)
        )

    def test_amplitude_must_fit(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            DiurnalAvailability(mean_online=0.9, amplitude=0.5)


class TestTrace:
    def test_generate_save_load_roundtrip(self, tmp_path):
        trace = generate_trace("bernoulli", num_devices=17, num_rounds=9, seed=4)
        assert trace.num_rounds == 9 and trace.num_devices == 17
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        loaded = AvailabilityTrace.load_jsonl(path)
        assert np.array_equal(trace.masks, loaded.masks)
        assert loaded.mean_availability == trace.mean_availability

    def test_generation_is_deterministic(self):
        first = generate_trace(num_devices=12, num_rounds=6, seed=9)
        second = generate_trace(num_devices=12, num_rounds=6, seed=9)
        assert np.array_equal(first.masks, second.masks)
        different = generate_trace(num_devices=12, num_rounds=6, seed=10)
        assert not np.array_equal(first.masks, different.masks)

    def test_replay_wraps(self):
        trace = generate_trace(num_devices=5, num_rounds=4, seed=0)
        process = TraceAvailability(trace=trace)
        process.reset(5)
        rng = np.random.default_rng(0)
        assert np.array_equal(process.online_mask(1, rng), trace.masks[1])
        assert np.array_equal(process.online_mask(6, rng), trace.masks[2])

    def test_replay_without_wrap_raises(self):
        trace = generate_trace(num_devices=5, num_rounds=4, seed=0)
        process = TraceAvailability(trace=trace, wrap=False)
        process.reset(5)
        with pytest.raises(SimulationError, match="4 rounds"):
            process.online_mask(4, np.random.default_rng(0))

    def test_device_count_mismatch_rejected(self):
        trace = generate_trace(num_devices=5, num_rounds=4, seed=0)
        process = TraceAvailability(trace=trace)
        with pytest.raises(ConfigurationError, match="5 devices"):
            process.reset(6)

    def test_synthetic_trace_generated_on_first_use(self):
        process = TraceAvailability(synthetic_rounds=8)
        process.reset(30)
        mask = process.online_mask(0, np.random.default_rng(2))
        assert process.trace is not None
        assert process.trace.num_rounds == 8
        assert np.array_equal(mask, process.trace.masks[0])

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ConfigurationError, match="not an availability trace"):
            AvailabilityTrace.load_jsonl(path)

    def test_row_count_mismatch_rejected(self, tmp_path):
        trace = generate_trace(num_devices=3, num_rounds=3, seed=0)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ConfigurationError, match="declares 3 rounds"):
            AvailabilityTrace.load_jsonl(path)

    def test_duplicate_round_rejected(self, tmp_path):
        trace = generate_trace(num_devices=3, num_rounds=2, seed=0)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        lines = path.read_text().splitlines()
        lines[2] = lines[1]  # Second data line re-declares round 0.
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="inconsistent"):
            AvailabilityTrace.load_jsonl(path)

    def test_non_binary_bits_rejected(self, tmp_path):
        trace = generate_trace(num_devices=3, num_rounds=1, seed=0)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"online": "', '"online": "2', 1)[:-2] + '"}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            AvailabilityTrace.load_jsonl(path)
