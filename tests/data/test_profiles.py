"""Tests for per-device data profiles."""

import numpy as np
import pytest

from repro.data.datasets import make_synthetic_mnist
from repro.data.federated import FederatedDataset
from repro.data.profiles import (
    DeviceDataProfile,
    profiles_from_federated_dataset,
    synthesize_data_profiles,
)
from repro.exceptions import DataError


class TestDeviceDataProfile:
    def test_quality_combines_coverage_and_balance(self):
        good = DeviceDataProfile(0, 100, class_fraction=1.0, balance_score=1.0, is_non_iid=False)
        poor = DeviceDataProfile(1, 100, class_fraction=0.2, balance_score=0.1, is_non_iid=True)
        assert good.data_quality == pytest.approx(1.0)
        assert poor.data_quality < 0.2

    def test_validation(self):
        with pytest.raises(DataError):
            DeviceDataProfile(0, -1, 0.5, 0.5, False)
        with pytest.raises(DataError):
            DeviceDataProfile(0, 1, 1.5, 0.5, False)


class TestSynthesizedProfiles:
    def test_iid_profiles_have_high_quality(self, rng):
        profiles = synthesize_data_profiles(list(range(50)), "iid", 10, 300, rng)
        qualities = [profile.data_quality for profile in profiles.values()]
        assert min(qualities) > 0.85
        assert not any(profile.is_non_iid for profile in profiles.values())

    def test_non_iid_profiles_have_low_quality(self, rng):
        profiles = synthesize_data_profiles(list(range(50)), "non_iid_100", 10, 300, rng)
        qualities = [profile.data_quality for profile in profiles.values()]
        assert np.mean(qualities) < 0.6
        assert all(profile.is_non_iid for profile in profiles.values())

    def test_mixed_fraction_respected(self, rng):
        profiles = synthesize_data_profiles(list(range(80)), "non_iid_50", 10, 300, rng)
        non_iid = sum(profile.is_non_iid for profile in profiles.values())
        assert non_iid == 40

    def test_iid_quality_exceeds_non_iid_quality(self, rng):
        profiles = synthesize_data_profiles(list(range(100)), "non_iid_50", 10, 300, rng)
        iid_quality = np.mean(
            [p.data_quality for p in profiles.values() if not p.is_non_iid]
        )
        non_iid_quality = np.mean([p.data_quality for p in profiles.values() if p.is_non_iid])
        assert iid_quality > non_iid_quality + 0.2

    def test_sample_counts_vary_around_target(self, rng):
        profiles = synthesize_data_profiles(list(range(60)), "iid", 10, 300, rng)
        counts = [profile.num_samples for profile in profiles.values()]
        assert 200 <= min(counts) and max(counts) <= 400

    def test_invalid_arguments(self, rng):
        with pytest.raises(DataError):
            synthesize_data_profiles([], "iid", 10, 300, rng)
        with pytest.raises(DataError):
            synthesize_data_profiles([0], "iid", 1, 300, rng)
        with pytest.raises(DataError):
            synthesize_data_profiles([0], "iid", 10, 0, rng)


class TestProfilesFromFederatedDataset:
    def test_consistency_with_shards(self, rng):
        dataset = make_synthetic_mnist(num_samples=300, seed=0)
        federated = FederatedDataset.partition(dataset, 6, "non_iid_50", rng)
        profiles = profiles_from_federated_dataset(federated)
        assert set(profiles) == set(federated.device_ids)
        for device_id, profile in profiles.items():
            shard = federated.shard(device_id)
            assert profile.num_samples == shard.num_samples
            assert profile.is_non_iid == shard.is_non_iid
            assert profile.class_fraction == pytest.approx(shard.class_fraction)
