"""Tests for IID / Dirichlet non-IID partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.partition import (
    DataDistribution,
    class_histogram,
    dirichlet_partition,
    iid_partition,
    mixed_partition,
)
from repro.exceptions import DataError


@pytest.fixture
def labels(rng):
    return rng.integers(0, 10, size=600)


def _all_indices(shards):
    return np.sort(np.concatenate([shard for shard in shards if len(shard)]))


class TestIidPartition:
    def test_partition_is_exact_and_disjoint(self, labels, rng):
        shards = iid_partition(labels, 12, rng)
        assert len(shards) == 12
        combined = _all_indices(shards)
        assert np.array_equal(combined, np.arange(len(labels)))

    def test_shards_are_balanced(self, labels, rng):
        shards = iid_partition(labels, 12, rng)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_cover_most_classes(self, labels, rng):
        shards = iid_partition(labels, 6, rng)
        for shard in shards:
            histogram = class_histogram(labels, shard, 10)
            assert np.count_nonzero(histogram) >= 8

    def test_invalid_inputs(self, rng):
        with pytest.raises(DataError):
            iid_partition(np.array([]), 3, rng)
        with pytest.raises(DataError):
            iid_partition(np.zeros((3, 2)), 3, rng)


class TestDirichletPartition:
    def test_partition_is_exact_and_disjoint(self, labels, rng):
        shards = dirichlet_partition(labels, 12, rng)
        combined = _all_indices(shards)
        assert np.array_equal(combined, np.arange(len(labels)))

    def test_low_concentration_concentrates_classes(self, rng):
        labels = np.repeat(np.arange(10), 100)
        shards = dirichlet_partition(labels, 20, rng, concentration=0.1)
        coverages = [
            np.count_nonzero(class_histogram(labels, shard, 10)) for shard in shards if len(shard)
        ]
        # Dirichlet(0.1) shards cover far fewer classes than IID shards would.
        assert np.mean(coverages) < 6

    def test_high_concentration_approaches_iid(self, rng):
        labels = np.repeat(np.arange(10), 100)
        shards = dirichlet_partition(labels, 10, rng, concentration=100.0)
        coverages = [
            np.count_nonzero(class_histogram(labels, shard, 10)) for shard in shards if len(shard)
        ]
        assert np.mean(coverages) > 8

    def test_invalid_concentration(self, labels, rng):
        with pytest.raises(DataError):
            dirichlet_partition(labels, 5, rng, concentration=0.0)


class TestMixedPartition:
    @pytest.mark.parametrize("fraction", [0.0, 0.5, 0.75, 1.0])
    def test_mask_matches_fraction(self, labels, rng, fraction):
        _shards, mask = mixed_partition(labels, 20, fraction, rng)
        assert mask.sum() == int(round(fraction * 20))

    def test_partition_is_exact_and_disjoint(self, labels, rng):
        shards, _mask = mixed_partition(labels, 16, 0.5, rng)
        combined = _all_indices(shards)
        assert np.array_equal(combined, np.arange(len(labels)))

    def test_non_iid_devices_have_fewer_classes(self, rng):
        labels = np.repeat(np.arange(10), 200)
        shards, mask = mixed_partition(labels, 40, 0.5, rng)
        iid_cov, non_iid_cov = [], []
        for device_id, shard in enumerate(shards):
            if len(shard) == 0:
                continue
            coverage = np.count_nonzero(class_histogram(labels, shard, 10))
            (non_iid_cov if mask[device_id] else iid_cov).append(coverage)
        assert np.mean(non_iid_cov) < np.mean(iid_cov)

    def test_invalid_fraction(self, labels, rng):
        with pytest.raises(DataError):
            mixed_partition(labels, 10, 1.5, rng)

    @settings(max_examples=25, deadline=None)
    @given(
        num_devices=st.integers(min_value=1, max_value=40),
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_no_sample_lost_or_duplicated(self, num_devices, fraction, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=200)
        shards, mask = mixed_partition(labels, num_devices, fraction, rng)
        assert len(shards) == num_devices
        assert len(mask) == num_devices
        combined = np.concatenate([shard for shard in shards if len(shard)])
        assert len(combined) == len(np.unique(combined)) == len(labels)


class TestDataDistribution:
    def test_fraction_mapping(self):
        assert DataDistribution.IID.non_iid_fraction == 0.0
        assert DataDistribution.NON_IID_75.non_iid_fraction == 0.75

    def test_from_name(self):
        assert DataDistribution.from_name("non_iid_50") is DataDistribution.NON_IID_50
        assert DataDistribution.from_name(DataDistribution.IID) is DataDistribution.IID
        with pytest.raises(DataError):
            DataDistribution.from_name("non_iid_33")


class TestClassHistogram:
    def test_counts(self):
        labels = np.array([0, 0, 1, 2, 2, 2])
        histogram = class_histogram(labels, np.arange(6), 4)
        assert histogram.tolist() == [2, 1, 3, 0]

    def test_empty_indices(self):
        histogram = class_histogram(np.array([0, 1]), np.array([], dtype=int), 3)
        assert histogram.tolist() == [0, 0, 0]
