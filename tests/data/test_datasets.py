"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.datasets import (
    SyntheticClassificationDataset,
    make_synthetic_imagenet,
    make_synthetic_mnist,
    make_synthetic_shakespeare,
)
from repro.exceptions import DataError


class TestSyntheticMnist:
    def test_shapes_and_labels(self):
        dataset = make_synthetic_mnist(num_samples=200, seed=0)
        assert dataset.features.shape == (200, 1, 28, 28)
        assert dataset.num_classes == 10
        assert set(np.unique(dataset.labels)) == set(range(10))
        assert dataset.features.min() >= 0.0 and dataset.features.max() <= 1.0

    def test_determinism(self):
        first = make_synthetic_mnist(num_samples=50, seed=3)
        second = make_synthetic_mnist(num_samples=50, seed=3)
        assert np.array_equal(first.labels, second.labels)
        assert np.allclose(first.features, second.features)

    def test_different_seeds_differ(self):
        first = make_synthetic_mnist(num_samples=50, seed=1)
        second = make_synthetic_mnist(num_samples=50, seed=2)
        assert not np.allclose(first.features, second.features)

    def test_subset(self):
        dataset = make_synthetic_mnist(num_samples=100, seed=0)
        subset = dataset.subset(np.arange(10))
        assert len(subset) == 10
        assert subset.num_classes == dataset.num_classes

    def test_classes_are_separable_by_mean_pattern(self):
        """Per-class mean images must differ, otherwise the CNN could learn nothing."""
        dataset = make_synthetic_mnist(num_samples=500, seed=0)
        means = [
            dataset.features[dataset.labels == label].mean(axis=0) for label in range(10)
        ]
        distances = [
            np.abs(means[i] - means[j]).mean() for i in range(10) for j in range(i + 1, 10)
        ]
        assert min(distances) > 0.01

    def test_too_few_samples_rejected(self):
        with pytest.raises(DataError):
            make_synthetic_mnist(num_samples=5)


class TestSyntheticImagenet:
    def test_shapes(self):
        dataset = make_synthetic_imagenet(num_samples=150, num_classes=20, seed=0)
        assert dataset.features.shape == (150, 3, 32, 32)
        assert dataset.num_classes == 20
        assert dataset.sample_shape == (3, 32, 32)


class TestSyntheticShakespeare:
    def test_shapes_and_vocab(self):
        dataset = make_synthetic_shakespeare(
            num_samples=300, sequence_length=15, vocab_size=30, seed=0
        )
        assert dataset.sequences.shape == (300, 15)
        assert dataset.labels.shape == (300,)
        assert dataset.num_classes == 30
        assert dataset.sequence_length == 15
        assert dataset.sequences.max() < 30
        assert dataset.labels.max() < 30

    def test_markov_structure_is_learnable(self):
        """The next character must be predictable above chance from the last character."""
        dataset = make_synthetic_shakespeare(num_samples=3000, vocab_size=20, seed=1)
        last_chars = dataset.sequences[:, -1]
        # Majority-vote predictor conditioned on the previous character.
        correct = 0
        for char in range(20):
            mask = last_chars == char
            if mask.sum() == 0:
                continue
            values, counts = np.unique(dataset.labels[mask], return_counts=True)
            correct += counts.max()
        accuracy = correct / len(dataset)
        assert accuracy > 2.0 / 20

    def test_features_alias(self):
        dataset = make_synthetic_shakespeare(num_samples=10, seed=0)
        assert np.array_equal(dataset.features, dataset.sequences)

    def test_invalid_parameters(self):
        with pytest.raises(DataError):
            make_synthetic_shakespeare(num_samples=0)
        with pytest.raises(DataError):
            make_synthetic_shakespeare(num_samples=10, vocab_size=1)


class TestValidation:
    def test_misaligned_labels_rejected(self):
        features = np.zeros((10, 1, 4, 4))
        labels = np.zeros(5, dtype=np.int64)
        with pytest.raises(DataError):
            SyntheticClassificationDataset(features, labels, 2, "bad")

    def test_out_of_range_labels_rejected(self):
        features = np.zeros((4, 1, 4, 4))
        labels = np.array([0, 1, 2, 5])
        with pytest.raises(DataError):
            SyntheticClassificationDataset(features, labels, 3, "bad")
