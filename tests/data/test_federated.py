"""Tests for the federated dataset container."""

import numpy as np
import pytest

from repro.data.datasets import make_synthetic_mnist
from repro.data.federated import FederatedDataset
from repro.data.partition import DataDistribution
from repro.exceptions import DataError


@pytest.fixture
def dataset():
    return make_synthetic_mnist(num_samples=400, seed=0)


class TestFederatedDataset:
    def test_partition_covers_all_devices(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 10, DataDistribution.IID, rng)
        assert federated.num_devices == 10
        assert federated.device_ids == list(range(10))
        total = sum(federated.shard(device_id).num_samples for device_id in range(10))
        assert total == len(dataset)

    def test_iid_shards_have_full_coverage(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 5, "iid", rng)
        for device_id in federated.device_ids:
            shard = federated.shard(device_id)
            assert not shard.is_non_iid
            assert shard.class_fraction > 0.8
            assert shard.balance_score() > 0.8

    def test_non_iid_shards_flagged_and_concentrated(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 20, "non_iid_100", rng)
        assert len(federated.non_iid_device_ids()) == 20
        fractions = [federated.shard(d).class_fraction for d in federated.device_ids]
        assert np.mean(fractions) < 0.7

    def test_custom_device_ids(self, dataset, rng):
        ids = [100, 200, 300]
        federated = FederatedDataset.partition(dataset, 3, "iid", rng, device_ids=ids)
        assert federated.device_ids == ids

    def test_device_id_mismatch_rejected(self, dataset, rng):
        with pytest.raises(DataError):
            FederatedDataset.partition(dataset, 3, "iid", rng, device_ids=[1, 2])

    def test_local_dataset_matches_shard(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 4, "iid", rng)
        local = federated.local_dataset(2)
        shard = federated.shard(2)
        assert len(local) == shard.num_samples
        assert np.array_equal(local.labels, dataset.labels[shard.indices])

    def test_missing_shard(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 4, "iid", rng)
        with pytest.raises(DataError):
            federated.shard(99)

    def test_balance_score_bounds(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 30, "non_iid_50", rng)
        for device_id in federated.device_ids:
            assert 0.0 <= federated.shard(device_id).balance_score() <= 1.0
