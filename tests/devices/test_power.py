"""Tests for the CPU/GPU power models (paper Equations 1, 2 and 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.power import (
    AWAKE_OVERHEAD_FRACTION,
    BusyInterval,
    CpuPowerModel,
    GpuPowerModel,
    awake_power,
    busy_power_at_frequency,
    idle_energy,
)
from repro.devices.specs import MI8_PRO, MOTO_X_FORCE
from repro.exceptions import DeviceError


class TestBusyPower:
    def test_peak_power_at_top_step_full_utilization(self):
        spec = MI8_PRO.cpu
        power = busy_power_at_frequency(spec, spec.num_vf_steps - 1, utilization=1.0)
        assert power == pytest.approx(spec.peak_power_watt)

    def test_power_monotone_in_frequency(self):
        spec = MI8_PRO.cpu
        powers = [busy_power_at_frequency(spec, step) for step in range(spec.num_vf_steps)]
        assert powers == sorted(powers)

    def test_power_monotone_in_utilization(self):
        spec = MI8_PRO.cpu
        low = busy_power_at_frequency(spec, 10, utilization=0.2)
        high = busy_power_at_frequency(spec, 10, utilization=0.9)
        assert high > low

    def test_power_scale_applies(self):
        spec = MOTO_X_FORCE.cpu
        scaled = busy_power_at_frequency(spec, 5, power_scale=0.5)
        unscaled = busy_power_at_frequency(spec, 5, power_scale=1.0)
        assert scaled == pytest.approx(0.5 * unscaled)

    def test_invalid_utilization(self):
        with pytest.raises(DeviceError):
            busy_power_at_frequency(MI8_PRO.cpu, 0, utilization=1.5)

    @given(step=st.integers(min_value=0, max_value=22), util=st.floats(0.0, 1.0))
    def test_power_between_static_floor_and_peak(self, step, util):
        spec = MI8_PRO.cpu
        power = busy_power_at_frequency(spec, step, utilization=util)
        assert 0.0 < power <= spec.peak_power_watt + 1e-9


class TestEnergyModels:
    def test_eq1_sums_busy_and_idle(self):
        model = CpuPowerModel(MI8_PRO.cpu)
        intervals = [BusyInterval(step=22, duration_s=2.0), BusyInterval(step=5, duration_s=1.0)]
        energy = model.energy(intervals, idle_time_s=3.0)
        expected = (
            model.busy_power(22) * 2.0 + model.busy_power(5) * 1.0 + model.idle_power() * 3.0
        )
        assert energy == pytest.approx(expected)

    def test_gpu_model_same_structure(self):
        model = GpuPowerModel(MI8_PRO.gpu)
        energy = model.energy([BusyInterval(step=6, duration_s=1.0)])
        assert energy == pytest.approx(model.busy_power(6))

    def test_negative_durations_rejected(self):
        model = CpuPowerModel(MI8_PRO.cpu)
        with pytest.raises(DeviceError):
            model.energy([BusyInterval(step=0, duration_s=-1.0)])
        with pytest.raises(DeviceError):
            model.energy([], idle_time_s=-1.0)

    def test_eq4_idle_energy(self):
        assert idle_energy(0.05, 10.0) == pytest.approx(0.5)
        with pytest.raises(DeviceError):
            idle_energy(0.05, -1.0)

    def test_zero_energy_without_work(self):
        model = CpuPowerModel(MI8_PRO.cpu)
        assert model.energy([]) == 0.0


class TestAwakePower:
    def test_awake_above_idle_below_peak(self):
        value = awake_power(5.5, 0.03)
        assert 0.03 < value < 5.5
        assert value == pytest.approx(0.03 + AWAKE_OVERHEAD_FRACTION * 5.5)

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            awake_power(0.0, 0.03)
