"""Tests for the DVFS governor (straggler-slack exploitation)."""

import pytest

from repro.devices.dvfs import DvfsGovernor
from repro.devices.performance import ComputeWorkload, TrainingTimeModel
from repro.devices.specs import MI8_PRO
from repro.exceptions import DeviceError


@pytest.fixture
def governor():
    return DvfsGovernor()


@pytest.fixture
def workload():
    return ComputeWorkload.for_round(45e6, 1.5e6, 300, 16, 5)


class TestDvfsGovernor:
    def test_max_performance_is_top_step(self, governor):
        assert governor.max_performance(MI8_PRO.cpu) == MI8_PRO.cpu.num_vf_steps - 1

    def test_tight_deadline_falls_back_to_fastest(self, governor, workload):
        spec = MI8_PRO.cpu
        fastest_time = TrainingTimeModel().training_time(workload, spec, spec.num_vf_steps - 1)
        decision = governor.energy_optimal_under_deadline(workload, spec, fastest_time * 0.5)
        assert decision.step == spec.num_vf_steps - 1

    def test_loose_deadline_picks_lower_step_and_saves_energy(self, governor, workload):
        spec = MI8_PRO.cpu
        fastest_time = TrainingTimeModel().training_time(workload, spec, spec.num_vf_steps - 1)
        fastest = governor.energy_optimal_under_deadline(workload, spec, fastest_time * 1.001)
        relaxed = governor.energy_optimal_under_deadline(workload, spec, fastest_time * 3.0)
        assert relaxed.step < spec.num_vf_steps - 1
        assert relaxed.predicted_energy_j < fastest.predicted_energy_j
        assert relaxed.predicted_time_s <= fastest_time * 3.0

    def test_deadline_always_respected_when_feasible(self, governor, workload):
        spec = MI8_PRO.cpu
        for factor in (1.2, 1.5, 2.0, 4.0):
            deadline = (
                TrainingTimeModel().training_time(workload, spec, spec.num_vf_steps - 1) * factor
            )
            decision = governor.energy_optimal_under_deadline(workload, spec, deadline)
            assert decision.predicted_time_s <= deadline + 1e-9

    def test_invalid_deadline(self, governor, workload):
        with pytest.raises(DeviceError):
            governor.energy_optimal_under_deadline(workload, MI8_PRO.cpu, 0.0)

    def test_interference_raises_predicted_time(self, governor, workload):
        spec = MI8_PRO.cpu
        clean = governor.energy_optimal_under_deadline(workload, spec, 1e6)
        congested = governor.energy_optimal_under_deadline(
            workload, spec, 1e6, compute_slowdown=2.0
        )
        assert congested.predicted_time_s > clean.predicted_time_s
