"""Tests for the struct-of-arrays fleet snapshot and condition arrays."""

import numpy as np
import pytest

from repro.devices.device import ExecutionTarget, RoundConditions
from repro.devices.fleet_arrays import (
    PROC_CPU,
    PROC_GPU,
    FleetArrays,
    RoundConditionsArrays,
)
from repro.exceptions import DeviceError, SimulationError


@pytest.fixture
def arrays(small_fleet):
    return FleetArrays.from_fleet(small_fleet)


class TestFleetArrays:
    def test_snapshot_matches_devices(self, small_fleet, arrays):
        assert len(arrays) == len(small_fleet)
        for row, device in enumerate(small_fleet.devices):
            assert int(arrays.device_ids[row]) == device.device_id
            assert arrays.peak_gflops[PROC_CPU, row] == device.spec.cpu.peak_gflops
            assert arrays.peak_gflops[PROC_GPU, row] == device.spec.gpu.peak_gflops
            assert arrays.num_vf_steps[PROC_CPU, row] == device.spec.cpu.num_vf_steps
            assert arrays.idle_power_watt[row] == device.idle_power()
            assert arrays.awake_power_watt[row] == device.awake_power()
            assert arrays.num_samples[row] == device.num_local_samples

    def test_snapshot_reflects_assigned_samples(self, small_fleet):
        for device in small_fleet:
            device.assign_samples(17)
        arrays = FleetArrays.from_fleet(small_fleet)
        assert np.all(arrays.num_samples == 17)

    def test_rows_for_maps_ids(self, small_fleet, arrays):
        ids = small_fleet.device_ids[::3]
        rows = arrays.rows_for(ids)
        assert [int(arrays.device_ids[row]) for row in rows] == ids

    def test_rows_for_unknown_id_rejected(self, arrays):
        with pytest.raises(DeviceError):
            arrays.rows_for([10_000])

    def test_default_vf_steps_match_default_targets(self, small_fleet, arrays):
        defaults = arrays.default_vf_steps()
        for row, device in enumerate(small_fleet.devices):
            assert int(defaults[row]) == device.default_target().vf_step

    def test_relative_frequency_matches_scalar(self, small_fleet, arrays):
        rows, processors, steps = [], [], []
        expected = []
        for row, device in enumerate(small_fleet.devices):
            for code, spec in ((PROC_CPU, device.spec.cpu), (PROC_GPU, device.spec.gpu)):
                for step in (0, spec.num_vf_steps // 2, spec.num_vf_steps - 1):
                    rows.append(row)
                    processors.append(code)
                    steps.append(step)
                    expected.append(spec.relative_frequency(step))
        result = arrays.relative_frequency(
            np.array(processors), np.array(steps), np.array(rows)
        )
        assert result == pytest.approx(expected, rel=1e-12)

    def test_out_of_range_step_rejected(self, small_fleet, arrays):
        cpu_steps = small_fleet.devices[0].spec.cpu.num_vf_steps
        with pytest.raises(DeviceError):
            arrays.relative_frequency(
                np.array([PROC_CPU]), np.array([cpu_steps]), np.array([0])
            )


class TestRoundConditionsArrays:
    def test_mapping_roundtrip(self, small_fleet, rng):
        ids = small_fleet.device_ids
        mapping = {
            device_id: RoundConditions(
                co_cpu_util=float(rng.random()),
                co_mem_util=float(rng.random()),
                bandwidth_mbps=float(10 + 90 * rng.random()),
            )
            for device_id in ids
        }
        arrays = RoundConditionsArrays.from_mapping(ids, mapping)
        restored = arrays.to_mapping(ids)
        assert restored == mapping

    def test_missing_device_raises_simulation_error(self, small_fleet):
        ids = small_fleet.device_ids
        mapping = {device_id: RoundConditions() for device_id in ids[:-1]}
        with pytest.raises(SimulationError, match=str(ids[-1])):
            RoundConditionsArrays.from_mapping(ids, mapping)

    def test_take_selects_rows(self, small_fleet):
        ids = small_fleet.device_ids
        mapping = {
            device_id: RoundConditions(bandwidth_mbps=float(10 + device_id))
            for device_id in ids
        }
        arrays = RoundConditionsArrays.from_mapping(ids, mapping)
        subset = arrays.take(np.array([0, 2]))
        assert subset.bandwidth_mbps[0] == 10 + ids[0]
        assert subset.bandwidth_mbps[1] == 10 + ids[2]

    def test_lazy_mapping_matches_eager_mapping(self, small_fleet, rng):
        ids = small_fleet.device_ids
        mapping = {
            device_id: RoundConditions(bandwidth_mbps=float(10 + 90 * rng.random()))
            for device_id in ids
        }
        arrays = RoundConditionsArrays.from_mapping(ids, mapping)
        lazy = arrays.lazy_mapping(ids)
        assert len(lazy) == len(ids)
        assert list(lazy) == ids
        assert dict(lazy) == arrays.to_mapping(ids)
        # Cached objects are reused across accesses.
        assert lazy[ids[0]] is lazy[ids[0]]
        with pytest.raises(KeyError):
            lazy[10_000]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            RoundConditionsArrays(
                co_cpu_util=np.zeros(3),
                co_mem_util=np.zeros(3),
                bandwidth_mbps=np.ones(2),
            )


def test_execution_target_codes_cover_processors():
    # The code tables must stay in sync with the ExecutionTarget processor names.
    ExecutionTarget(processor="cpu", vf_step=0)
    ExecutionTarget(processor="gpu", vf_step=0)
    from repro.devices.fleet_arrays import PROCESSOR_CODES, PROCESSOR_NAMES

    assert set(PROCESSOR_CODES) == {"cpu", "gpu"}
    assert PROCESSOR_NAMES[PROCESSOR_CODES["cpu"]] == "cpu"
    assert PROCESSOR_NAMES[PROCESSOR_CODES["gpu"]] == "gpu"
