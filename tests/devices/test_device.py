"""Tests for the MobileDevice abstraction and execution targets."""

import pytest

from repro.devices.device import ExecutionTarget, MobileDevice, RoundConditions
from repro.devices.performance import ComputeWorkload
from repro.devices.specs import DeviceTier, GALAXY_S10E, MI8_PRO, MOTO_X_FORCE
from repro.exceptions import DeviceError


@pytest.fixture
def device():
    return MobileDevice(device_id=3, spec=MI8_PRO, num_local_samples=300)


@pytest.fixture
def workload():
    return ComputeWorkload.for_round(45e6, 1.5e6, 300, 16, 5)


class TestExecutionTarget:
    def test_label(self):
        assert ExecutionTarget("cpu", 12).label() == "cpu@12"

    def test_invalid_processor(self):
        with pytest.raises(DeviceError):
            ExecutionTarget("npu", 0)

    def test_negative_step(self):
        with pytest.raises(DeviceError):
            ExecutionTarget("cpu", -1)


class TestRoundConditions:
    def test_defaults_are_clean(self):
        conditions = RoundConditions()
        assert not conditions.has_interference
        assert conditions.bandwidth_mbps > 0

    def test_interference_flag(self):
        assert RoundConditions(co_cpu_util=0.3).has_interference
        assert RoundConditions(co_mem_util=0.2).has_interference

    def test_bounds(self):
        with pytest.raises(DeviceError):
            RoundConditions(co_cpu_util=1.2)
        with pytest.raises(DeviceError):
            RoundConditions(bandwidth_mbps=0.0)


class TestMobileDevice:
    def test_basic_properties(self, device):
        assert device.device_id == 3
        assert device.tier is DeviceTier.HIGH
        assert device.num_local_samples == 300

    def test_assign_samples(self, device):
        device.assign_samples(120)
        assert device.num_local_samples == 120
        with pytest.raises(DeviceError):
            device.assign_samples(-1)

    def test_default_target_is_top_cpu(self, device):
        target = device.default_target()
        assert target.processor == "cpu"
        assert target.vf_step == MI8_PRO.cpu.num_vf_steps - 1

    def test_available_targets_include_gpu_and_top_cpu(self, device):
        targets = device.available_targets()
        processors = {target.processor for target in targets}
        assert processors == {"cpu", "gpu"}
        assert device.default_target() in targets

    def test_available_targets_unique(self, device):
        targets = device.available_targets(dvfs_levels=5)
        labels = [target.label() for target in targets]
        assert len(labels) == len(set(labels))

    def test_validate_target_rejects_out_of_range(self, device):
        with pytest.raises(DeviceError):
            device.validate_target(ExecutionTarget("gpu", 50))

    def test_estimate_compute_positive(self, device, workload):
        estimate = device.estimate_compute(workload, device.default_target())
        assert estimate.time_s > 0
        assert estimate.energy_j > 0
        assert 0 < estimate.utilization <= 1.0

    def test_gpu_slower_but_lower_power_than_cpu(self, device, workload):
        """Without interference the CPU is the more energy-efficient target (paper 6.2)."""
        cpu = device.estimate_compute(workload, device.default_target())
        gpu = device.estimate_compute(
            workload, ExecutionTarget("gpu", MI8_PRO.gpu.num_vf_steps - 1)
        )
        assert gpu.time_s > cpu.time_s
        assert cpu.energy_j < gpu.energy_j

    def test_interference_increases_time_and_energy(self, device, workload):
        clean = device.estimate_compute(workload, device.default_target())
        congested = device.estimate_compute(
            workload, device.default_target(), compute_slowdown=2.0, memory_slowdown=1.5
        )
        assert congested.time_s > clean.time_s
        assert congested.energy_j > clean.energy_j

    def test_tier_energy_ordering_at_large_batch(self, workload):
        """At B = 32 (compute-saturated) the high-end tier is the most energy-efficient."""
        big_batch = ComputeWorkload.for_round(45e6, 1.5e6, 300, 32, 5)
        energies = {}
        for spec in (MI8_PRO, GALAXY_S10E, MOTO_X_FORCE):
            device = MobileDevice(0, spec, 300)
            energies[spec.tier] = device.estimate_compute(big_batch, device.default_target()).energy_j
        assert energies[DeviceTier.HIGH] < energies[DeviceTier.LOW]

    def test_awake_power_between_idle_and_peak(self, device):
        assert device.idle_power() < device.awake_power() < MI8_PRO.cpu.peak_power_watt

    def test_invalid_constructor_args(self):
        with pytest.raises(DeviceError):
            MobileDevice(device_id=-1, spec=MI8_PRO)
        with pytest.raises(DeviceError):
            MobileDevice(device_id=0, spec=MI8_PRO, num_local_samples=-5)
