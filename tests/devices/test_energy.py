"""Tests for per-round energy accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.exceptions import SimulationError


class TestDeviceEnergy:
    def test_totals(self):
        energy = DeviceEnergy(compute_j=2.0, communication_j=1.0, idle_j=0.5)
        assert energy.total_j == pytest.approx(3.5)
        assert energy.active_j == pytest.approx(3.0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            DeviceEnergy(compute_j=-1.0)

    @given(
        compute=st.floats(0, 1e6),
        comm=st.floats(0, 1e6),
        idle=st.floats(0, 1e6),
    )
    def test_total_is_sum_of_parts(self, compute, comm, idle):
        energy = DeviceEnergy(compute, comm, idle)
        assert energy.total_j == pytest.approx(compute + comm + idle)
        assert energy.active_j <= energy.total_j


class TestRoundEnergyAccount:
    def test_global_sums_all_devices(self):
        account = RoundEnergyAccount()
        account.record(0, DeviceEnergy(compute_j=1.0, communication_j=0.5))
        account.record(1, DeviceEnergy(idle_j=0.2))
        assert account.global_j == pytest.approx(1.7)
        assert account.participant_j == pytest.approx(1.5)
        assert account.idle_total_j == pytest.approx(0.2)

    def test_device_lookup_error(self):
        account = RoundEnergyAccount()
        with pytest.raises(SimulationError):
            account.device(42)

    def test_record_overwrites(self):
        account = RoundEnergyAccount()
        account.record(0, DeviceEnergy(compute_j=1.0))
        account.record(0, DeviceEnergy(compute_j=2.0))
        assert account.global_j == pytest.approx(2.0)

    def test_merge_sums_overlapping_devices(self):
        left = RoundEnergyAccount()
        left.record(0, DeviceEnergy(compute_j=1.0))
        left.record(1, DeviceEnergy(idle_j=0.5))
        right = RoundEnergyAccount()
        right.record(0, DeviceEnergy(communication_j=2.0))
        right.record(2, DeviceEnergy(compute_j=3.0))
        merged = left.merge(right)
        assert merged.device(0).total_j == pytest.approx(3.0)
        assert merged.device(1).idle_j == pytest.approx(0.5)
        assert merged.device(2).compute_j == pytest.approx(3.0)
        # Originals unchanged.
        assert left.device(0).total_j == pytest.approx(1.0)
