"""Tests for fleet construction."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.devices.device import MobileDevice
from repro.devices.fleet import Fleet, build_fleet
from repro.devices.specs import DeviceTier, MI8_PRO
from repro.exceptions import DeviceError


class TestBuildFleet:
    def test_default_fleet_matches_paper_composition(self):
        fleet = build_fleet(SimulationConfig())
        assert len(fleet) == 200
        counts = fleet.tier_counts()
        assert counts[DeviceTier.HIGH] == 30
        assert counts[DeviceTier.MID] == 70
        assert counts[DeviceTier.LOW] == 100

    def test_device_ids_are_contiguous(self, small_config):
        fleet = build_fleet(small_config)
        assert sorted(fleet.device_ids) == list(range(small_config.num_devices))

    def test_seed_determinism(self, small_config):
        first = build_fleet(small_config, np.random.default_rng(5))
        second = build_fleet(small_config, np.random.default_rng(5))
        assert [d.tier for d in first] == [d.tier for d in second]

    def test_tier_assignment_is_shuffled(self):
        config = SimulationConfig()
        fleet = build_fleet(config, np.random.default_rng(0))
        # The first 30 device ids must not all be high-end (ids would then leak tier).
        first_30 = {fleet[device_id].tier for device_id in range(30)}
        assert len(first_30) > 1


class TestFleet:
    def test_lookup_and_errors(self, small_fleet):
        device_id = small_fleet.device_ids[0]
        assert small_fleet[device_id].device_id == device_id
        with pytest.raises(DeviceError):
            small_fleet[99999]

    def test_by_tier_accepts_strings(self, small_fleet):
        high = small_fleet.by_tier("high")
        assert all(device.tier is DeviceTier.HIGH for device in high)
        assert len(high) == small_fleet.tier_counts()[DeviceTier.HIGH]

    def test_tier_of(self, small_fleet):
        for device in small_fleet:
            assert small_fleet.tier_of(device.device_id) is device.tier

    def test_duplicate_ids_rejected(self):
        devices = [MobileDevice(1, MI8_PRO), MobileDevice(1, MI8_PRO)]
        with pytest.raises(DeviceError):
            Fleet(devices)

    def test_empty_fleet_rejected(self):
        with pytest.raises(DeviceError):
            Fleet([])

    def test_devices_returns_copy(self, small_fleet):
        devices = small_fleet.devices
        devices.clear()
        assert len(small_fleet) > 0
