"""Tests for device specifications (paper Tables 2 and 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.specs import (
    DeviceTier,
    GALAXY_S10E,
    MI8_PRO,
    MOTO_X_FORCE,
    ProcessorSpec,
    TIER_SPECS,
)
from repro.exceptions import DeviceError


class TestTierSpecs:
    def test_table3_vf_steps(self):
        assert MI8_PRO.cpu.num_vf_steps == 23
        assert MI8_PRO.gpu.num_vf_steps == 7
        assert GALAXY_S10E.cpu.num_vf_steps == 21
        assert GALAXY_S10E.gpu.num_vf_steps == 9
        assert MOTO_X_FORCE.cpu.num_vf_steps == 15
        assert MOTO_X_FORCE.gpu.num_vf_steps == 6

    def test_table3_peak_power(self):
        assert MI8_PRO.cpu.peak_power_watt == pytest.approx(5.5)
        assert GALAXY_S10E.cpu.peak_power_watt == pytest.approx(5.6)
        assert MOTO_X_FORCE.cpu.peak_power_watt == pytest.approx(3.6)

    def test_table2_gflops(self):
        assert MI8_PRO.cpu.peak_gflops == pytest.approx(153.6)
        assert GALAXY_S10E.cpu.peak_gflops == pytest.approx(80.0)
        assert MOTO_X_FORCE.cpu.peak_gflops == pytest.approx(52.8)

    def test_tier_mapping_covers_all_tiers(self):
        assert set(TIER_SPECS) == set(DeviceTier)
        assert TIER_SPECS[DeviceTier.HIGH] is MI8_PRO

    def test_training_power_scale_ordering(self):
        # Mid and low-end tiers draw 35.7 % / 46.4 % less power than the high-end during
        # training (paper Section 3.1): effective power = scale * peak.
        high = MI8_PRO.training_power_scale * MI8_PRO.cpu.peak_power_watt
        mid = GALAXY_S10E.training_power_scale * GALAXY_S10E.cpu.peak_power_watt
        low = MOTO_X_FORCE.training_power_scale * MOTO_X_FORCE.cpu.peak_power_watt
        assert mid == pytest.approx(0.643 * high, rel=1e-6)
        assert low == pytest.approx(0.536 * high, rel=1e-6)

    def test_processor_lookup(self):
        assert MI8_PRO.processor("cpu") is MI8_PRO.cpu
        assert MI8_PRO.processor("gpu") is MI8_PRO.gpu
        with pytest.raises(DeviceError):
            MI8_PRO.processor("npu")


class TestDeviceTier:
    @pytest.mark.parametrize("name, tier", [("high", DeviceTier.HIGH), ("MID", DeviceTier.MID)])
    def test_from_name(self, name, tier):
        assert DeviceTier.from_name(name) is tier

    def test_from_name_passthrough(self):
        assert DeviceTier.from_name(DeviceTier.LOW) is DeviceTier.LOW

    def test_unknown_tier(self):
        with pytest.raises(DeviceError):
            DeviceTier.from_name("flagship")


class TestProcessorSpec:
    @pytest.fixture
    def spec(self):
        return MI8_PRO.cpu

    def test_frequency_monotone_in_step(self, spec):
        frequencies = [spec.frequency_at_step(step) for step in range(spec.num_vf_steps)]
        assert frequencies == sorted(frequencies)
        assert frequencies[-1] == pytest.approx(spec.max_frequency_ghz)

    def test_min_frequency_is_40_percent(self, spec):
        assert spec.min_frequency_ghz == pytest.approx(0.4 * spec.max_frequency_ghz)

    def test_step_out_of_range(self, spec):
        with pytest.raises(DeviceError):
            spec.frequency_at_step(spec.num_vf_steps)
        with pytest.raises(DeviceError):
            spec.frequency_at_step(-1)

    @given(step=st.integers(min_value=0, max_value=22))
    def test_relative_frequency_bounded(self, step):
        rel = MI8_PRO.cpu.relative_frequency(step)
        assert 0.4 - 1e-9 <= rel <= 1.0 + 1e-9

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            ProcessorSpec(
                name="bad",
                max_frequency_ghz=1.0,
                num_vf_steps=0,
                peak_power_watt=1.0,
                idle_power_watt=0.1,
                peak_gflops=10.0,
                mem_bandwidth_gbs=5.0,
            )

    def test_single_step_processor(self):
        spec = ProcessorSpec(
            name="single",
            max_frequency_ghz=1.0,
            num_vf_steps=1,
            peak_power_watt=1.0,
            idle_power_watt=0.1,
            peak_gflops=10.0,
            mem_bandwidth_gbs=5.0,
        )
        assert spec.frequency_at_step(0) == pytest.approx(1.0)
