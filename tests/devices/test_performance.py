"""Tests for the roofline training-time model."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.performance import ComputeWorkload, TrainingTimeModel
from repro.devices.specs import GALAXY_S10E, MI8_PRO, MOTO_X_FORCE
from repro.exceptions import DeviceError


@pytest.fixture
def model():
    return TrainingTimeModel()


@pytest.fixture
def workload():
    return ComputeWorkload.for_round(
        flops_per_sample=45e6,
        bytes_per_sample=1.5e6,
        num_samples=300,
        batch_size=32,
        local_epochs=5,
    )


class TestComputeWorkload:
    def test_for_round_scales_with_epochs(self):
        one = ComputeWorkload.for_round(1e6, 1e5, 100, 10, 1)
        five = ComputeWorkload.for_round(1e6, 1e5, 100, 10, 5)
        assert five.flops == pytest.approx(5 * one.flops)
        assert five.memory_bytes == pytest.approx(5 * one.memory_bytes)

    def test_rounds_up_partial_batches(self):
        workload = ComputeWorkload.for_round(1e6, 0.0 + 1e3, 101, 10, 1)
        # 11 batches of 10 samples -> 110 samples processed.
        assert workload.flops == pytest.approx(110 * 1e6)

    def test_empty_shard(self):
        workload = ComputeWorkload.for_round(1e6, 1e5, 0, 10, 3)
        assert workload.flops == 0.0
        assert workload.memory_bytes == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(DeviceError):
            ComputeWorkload.for_round(1e6, 1e5, -1, 10, 1)
        with pytest.raises(DeviceError):
            ComputeWorkload.for_round(1e6, 1e5, 10, 0, 1)
        with pytest.raises(DeviceError):
            ComputeWorkload(flops=-1.0, memory_bytes=0.0)


class TestBatchEfficiency:
    def test_saturated_batch_reaches_full_efficiency(self, model):
        assert model.batch_efficiency(MI8_PRO.cpu, 32) == 1.0
        assert model.batch_efficiency(MOTO_X_FORCE.cpu, 8) == 1.0

    def test_small_batch_hurts_wide_processor_more(self, model):
        high = model.batch_efficiency(MI8_PRO.cpu, 8)
        low = model.batch_efficiency(MOTO_X_FORCE.cpu, 8)
        assert high < low == 1.0

    def test_tier_time_gap_shrinks_with_batch_size(self, model):
        """Paper Section 3.1: the tier performance gap narrows at smaller B."""

        def gap(batch_size):
            demand = ComputeWorkload.for_round(45e6, 1.5e6, 300, batch_size, 5)
            high = model.training_time(demand, MI8_PRO.cpu, MI8_PRO.cpu.num_vf_steps - 1)
            low = model.training_time(
                demand, MOTO_X_FORCE.cpu, MOTO_X_FORCE.cpu.num_vf_steps - 1
            )
            return low / high

        assert gap(8) < gap(32)


class TestTrainingTime:
    def test_high_end_faster_than_low_end(self, model, workload):
        high = model.training_time(workload, MI8_PRO.cpu, MI8_PRO.cpu.num_vf_steps - 1)
        mid = model.training_time(workload, GALAXY_S10E.cpu, GALAXY_S10E.cpu.num_vf_steps - 1)
        low = model.training_time(workload, MOTO_X_FORCE.cpu, MOTO_X_FORCE.cpu.num_vf_steps - 1)
        assert high < mid < low

    def test_high_to_low_gap_in_paper_range(self, model, workload):
        """The compute-heavy gap should land in the paper's reported 1.7-2.9x band."""
        high = model.training_time(workload, MI8_PRO.cpu, MI8_PRO.cpu.num_vf_steps - 1)
        low = model.training_time(workload, MOTO_X_FORCE.cpu, MOTO_X_FORCE.cpu.num_vf_steps - 1)
        assert 1.5 <= low / high <= 3.2

    def test_lower_frequency_is_slower(self, model, workload):
        spec = MI8_PRO.cpu
        fast = model.training_time(workload, spec, spec.num_vf_steps - 1)
        slow = model.training_time(workload, spec, 0)
        assert slow > fast

    def test_interference_slows_down(self, model, workload):
        spec = MI8_PRO.cpu
        clean = model.training_time(workload, spec, 10)
        congested = model.training_time(workload, spec, 10, compute_slowdown=2.0)
        assert congested > clean

    def test_invalid_slowdown(self, model, workload):
        with pytest.raises(DeviceError):
            model.training_time(workload, MI8_PRO.cpu, 0, compute_slowdown=0.5)

    @given(
        flops=st.floats(min_value=1e6, max_value=1e12),
        memory=st.floats(min_value=1e5, max_value=1e10),
    )
    def test_time_positive_and_additive(self, flops, memory):
        model = TrainingTimeModel()
        workload = ComputeWorkload(flops=flops, memory_bytes=memory, batch_size=16)
        spec = GALAXY_S10E.cpu
        combined = model.training_time(workload, spec, 5)
        compute_only = model.training_time(ComputeWorkload(flops, 0.0, 16), spec, 5)
        memory_only = model.training_time(ComputeWorkload(0.0, memory, 16), spec, 5)
        assert combined == pytest.approx(compute_only + memory_only, rel=1e-9)

    def test_utilization_bounds(self, model, workload):
        value = model.utilization(workload, MI8_PRO.cpu, 10)
        assert 0.0 < value <= 1.0
        empty = ComputeWorkload(0.0, 0.0)
        assert model.utilization(empty, MI8_PRO.cpu, 10) == 0.0

    def test_memory_bound_workload_has_lower_utilization(self, model):
        compute_bound = ComputeWorkload(flops=1e11, memory_bytes=1e6, batch_size=32)
        memory_bound = ComputeWorkload(flops=1e8, memory_bytes=1e10, batch_size=32)
        spec = MI8_PRO.cpu
        assert model.utilization(memory_bound, spec, 22) < model.utilization(
            compute_bound, spec, 22
        )
