"""Tests for the decorator-based registries and their validation errors."""

import pytest

from repro.exceptions import ConfigurationError, DataError, PolicyError
from repro.registry import (
    AGGREGATORS,
    DATA_DISTRIBUTIONS,
    INTERFERENCE,
    NETWORKS,
    POLICIES,
    REGISTRIES,
    Registry,
    SETTINGS,
    WORKLOADS,
    canonical_key,
    get_registry,
)


class TestCanonicalKey:
    def test_normalises_case_and_separators(self):
        assert canonical_key("Non_IID_50") == "non-iid-50"
        assert canonical_key("  FedAvg-Random ") == "fedavg-random"


class TestRegistryBasics:
    def test_register_and_create(self):
        registry = Registry("thing")
        registry.add("alpha", lambda: "a", aliases=("first",), summary="The letter a.")
        assert registry.create("alpha") == "a"
        assert registry.create("first") == "a"
        assert registry.canonical_name("first") == "alpha"
        assert "alpha" in registry and "first" in registry
        assert registry.names() == ["alpha"]

    def test_decorator_returns_object_unchanged(self):
        registry = Registry("thing")

        @registry.register("beta")
        def factory():
            """Docstring summary."""
            return "b"

        assert factory() == "b"
        assert registry.entries()[0].summary == "Docstring summary."

    def test_duplicate_name_rejected(self):
        registry = Registry("thing")
        registry.add("alpha", lambda: "a")
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.add("Alpha", lambda: "a2")

    def test_duplicate_alias_rejected(self):
        registry = Registry("thing")
        registry.add("alpha", lambda: "a")
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.add("beta", lambda: "b", aliases=("first", "alpha"))
        # A rejected registration must not leave the name or earlier aliases behind.
        assert "beta" not in registry
        assert "first" not in registry
        registry.add("beta", lambda: "b2", aliases=("first",))
        assert registry.create("first") == "b2"

    def test_unknown_name_suggests_close_match(self):
        registry = Registry("thing")
        registry.add("gradient", lambda: "g")
        with pytest.raises(ConfigurationError, match="did you mean 'gradient'"):
            registry.get("gradiant")

    def test_custom_error_class(self):
        registry = Registry("thing", error_cls=PolicyError)
        with pytest.raises(PolicyError):
            registry.get("missing")


class TestBuiltinRegistries:
    def test_all_policies_registered(self):
        names = set(POLICIES.names())
        assert {"fedavg-random", "power", "performance", "autofl", "ofl", "oparticipant"} <= names
        assert {f"cluster-c{i}" for i in range(1, 8)} <= names

    def test_policy_aliases(self):
        assert POLICIES.canonical_name("random") == "fedavg-random"
        assert POLICIES.canonical_name("oracle") == "ofl"

    def test_unknown_policy_raises_policy_error(self):
        with pytest.raises(PolicyError, match="did you mean 'autofl'"):
            POLICIES.entry("autofk")

    def test_workloads(self):
        assert set(WORKLOADS.names()) == {"cnn-mnist", "lstm-shakespeare", "mobilenet-imagenet"}
        assert WORKLOADS.create("mnist").name == "cnn-mnist"
        with pytest.raises(ConfigurationError, match="unknown workload"):
            WORKLOADS.entry("resnet")

    def test_aggregators(self):
        assert set(AGGREGATORS.names()) == {"fedavg", "fedprox", "fednova", "fedl"}
        with pytest.raises(PolicyError, match="unknown aggregator"):
            AGGREGATORS.entry("fedsgd")

    def test_scenario_axes(self):
        assert set(INTERFERENCE.names()) == {"none", "moderate", "heavy"}
        assert set(NETWORKS.names()) == {"stable", "variable", "weak"}
        assert set(SETTINGS.names()) == {"S1", "S2", "S3", "S4"}
        assert SETTINGS.create("s2").local_epochs == 5
        with pytest.raises(ConfigurationError, match="unknown interference"):
            INTERFERENCE.entry("mild")
        with pytest.raises(ConfigurationError, match="unknown network"):
            NETWORKS.entry("flaky")

    def test_data_distributions_raise_data_error(self):
        assert DATA_DISTRIBUTIONS.create("non-iid-50").non_iid_fraction == 0.5
        with pytest.raises(DataError, match="unknown data distribution"):
            DATA_DISTRIBUTIONS.entry("non_iid_25")


class TestGetRegistry:
    def test_lookup_by_axis_name(self):
        assert get_registry("policies") is POLICIES
        assert set(REGISTRIES) == {
            "policies",
            "workloads",
            "aggregators",
            "interference",
            "networks",
            "data-distributions",
            "settings",
            "scenarios",
            "availability",
        }

    def test_unknown_axis_suggests(self):
        with pytest.raises(ConfigurationError, match="did you mean 'settings'"):
            get_registry("settigns")


class TestThirdPartyExtension:
    def test_new_policy_is_one_decorator(self):
        from repro.core.selection import Policy, make_policy

        @POLICIES.register("test-noop-policy", summary="Registered by the test suite.")
        class NoopPolicy(Policy):
            name = "test-noop-policy"

        try:
            assert isinstance(make_policy("test-noop-policy"), NoopPolicy)
        finally:
            # Keep the shared registry pristine for the other tests.
            POLICIES._entries.pop("test-noop-policy")
