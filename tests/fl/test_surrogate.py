"""Tests for the surrogate convergence model."""

import numpy as np
import pytest

from repro.data.profiles import DeviceDataProfile
from repro.exceptions import SimulationError
from repro.fl.surrogate import STALL_QUALITY_THRESHOLD, SurrogateConvergenceModel
from repro.nn.workloads import CNN_MNIST


def _profile(device_id, quality, num_samples=300, non_iid=False):
    return DeviceDataProfile(
        device_id=device_id,
        num_samples=num_samples,
        class_fraction=quality,
        balance_score=quality,
        is_non_iid=non_iid,
    )


def _iid_participants(count=10):
    return [_profile(device_id, 0.97) for device_id in range(count)]


def _non_iid_participants(count=10):
    return [_profile(device_id, 0.25, non_iid=True) for device_id in range(count)]


@pytest.fixture
def model():
    return SurrogateConvergenceModel(CNN_MNIST, rng=np.random.default_rng(0), noise_scale=0.0)


class TestSurrogateConvergence:
    def test_iid_rounds_make_progress(self, model):
        before = model.accuracy
        after = model.step(_iid_participants(), local_epochs=5, num_expected_participants=10)
        assert after > before

    def test_iid_training_converges_to_target(self, model):
        for _ in range(200):
            model.step(_iid_participants(), 5, 10)
        assert model.accuracy >= CNN_MNIST.target_accuracy

    def test_non_iid_rounds_stall(self, model):
        for _ in range(100):
            model.step(_non_iid_participants(), 5, 10)
        assert model.accuracy < 0.3

    def test_round_quality_weighted_by_samples(self, model):
        heavy_good = [_profile(0, 0.9, num_samples=900), _profile(1, 0.1, num_samples=100)]
        assert model.round_quality(heavy_good) == pytest.approx(0.82, abs=0.01)
        assert model.round_quality([]) == 0.0

    def test_more_epochs_make_faster_progress(self):
        slow = SurrogateConvergenceModel(CNN_MNIST, rng=np.random.default_rng(0), noise_scale=0.0)
        fast = SurrogateConvergenceModel(CNN_MNIST, rng=np.random.default_rng(0), noise_scale=0.0)
        slow.step(_iid_participants(), local_epochs=1, num_expected_participants=10)
        fast.step(_iid_participants(), local_epochs=10, num_expected_participants=10)
        assert fast.accuracy > slow.accuracy

    def test_dropped_participants_slow_progress(self):
        full = SurrogateConvergenceModel(CNN_MNIST, rng=np.random.default_rng(0), noise_scale=0.0)
        partial = SurrogateConvergenceModel(
            CNN_MNIST, rng=np.random.default_rng(0), noise_scale=0.0
        )
        full.step(_iid_participants(20), 5, 20)
        partial.step(_iid_participants(5), 5, 20)
        assert full.accuracy > partial.accuracy

    def test_robust_aggregator_mitigates_heterogeneity(self):
        # Pick a mixed-quality round just below the stall threshold for plain FedAvg.
        participants = [_profile(i, 0.45) for i in range(10)]
        plain = SurrogateConvergenceModel(CNN_MNIST, 0.0, np.random.default_rng(0), noise_scale=0.0)
        robust = SurrogateConvergenceModel(
            CNN_MNIST, 0.45, np.random.default_rng(0), noise_scale=0.0
        )
        plain.step(participants, 5, 10)
        robust.step(participants, 5, 10)
        assert robust.accuracy > plain.accuracy

    def test_accuracy_never_exceeds_max(self, model):
        for _ in range(500):
            model.step(_iid_participants(), 10, 10)
        assert model.accuracy <= CNN_MNIST.max_accuracy

    def test_empty_round_only_drifts(self, model):
        before = model.accuracy
        after = model.step([], 5, 10)
        assert after == pytest.approx(before, abs=0.02)

    def test_reset(self, model):
        model.step(_iid_participants(), 5, 10)
        model.reset()
        assert model.accuracy == pytest.approx(0.10)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SurrogateConvergenceModel(CNN_MNIST, aggregator_robustness=1.5)
        with pytest.raises(SimulationError):
            SurrogateConvergenceModel(CNN_MNIST, initial_accuracy=0.999)
        model = SurrogateConvergenceModel(CNN_MNIST)
        with pytest.raises(SimulationError):
            model.step(_iid_participants(), 0, 10)

    def test_stall_threshold_in_sensible_range(self):
        assert 0.3 < STALL_QUALITY_THRESHOLD < 0.8
