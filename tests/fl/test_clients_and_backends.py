"""Tests for local training, FL clients and the two training backends."""

import numpy as np
import pytest

from repro.config import GlobalParams
from repro.data.datasets import make_synthetic_mnist
from repro.data.federated import FederatedDataset
from repro.data.profiles import synthesize_data_profiles
from repro.exceptions import SimulationError
from repro.fl.aggregation import FedAvgAggregator, FedProxAggregator
from repro.fl.client import FLClient
from repro.fl.server import NumpyTrainingBackend, SurrogateTrainingBackend
from repro.fl.trainer import LocalTrainer
from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD
from repro.nn.workloads import CNN_MNIST


def _small_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Flatten(), Dense(28 * 28, 32, rng), ReLU(), Dense(32, 10, rng)],
        input_shape=(1, 28, 28),
        name="mlp",
    )


@pytest.fixture
def dataset():
    return make_synthetic_mnist(num_samples=300, seed=1)


class TestLocalTrainer:
    def test_training_reduces_loss_and_counts_steps(self, dataset, rng):
        model = _small_mlp()
        trainer = LocalTrainer()
        features, labels = dataset.features[:128], dataset.labels[:128]
        result = trainer.train(model, features, labels, batch_size=16, epochs=3, optimizer=SGD(0.1), rng=rng)
        assert result.num_samples == 128
        assert result.num_steps == 8 * 3
        second = trainer.train(model, features, labels, batch_size=16, epochs=1, optimizer=SGD(0.1), rng=rng)
        assert second.mean_loss < result.mean_loss

    def test_empty_shard(self, rng):
        model = _small_mlp()
        result = LocalTrainer().train(
            model, np.empty((0, 1, 28, 28)), np.empty(0, dtype=int), 8, 1, SGD(), rng
        )
        assert result.num_steps == 0

    def test_evaluate_accuracy_bounds(self, dataset):
        model = _small_mlp()
        accuracy = LocalTrainer().evaluate(model, dataset.features, dataset.labels)
        assert 0.0 <= accuracy <= 1.0


class TestFLClient:
    def test_local_update_contains_trained_weights(self, dataset, rng):
        model = _small_mlp()
        global_weights = model.get_weights()
        client = FLClient(0, dataset.features[:64], dataset.labels[:64], learning_rate=0.1)
        update = client.local_update(model, global_weights, batch_size=16, epochs=1, rng=rng)
        assert update.device_id == 0
        assert update.num_samples == 64
        assert update.num_steps == 4
        changed = any(
            not np.allclose(update.weights[i][name], global_weights[i][name])
            for i in range(len(global_weights))
            for name in global_weights[i]
        )
        assert changed

    def test_proximal_mu_limits_drift(self, dataset, rng):
        model = _small_mlp()
        global_weights = model.get_weights()
        client = FLClient(0, dataset.features[:64], dataset.labels[:64], learning_rate=0.1)

        def drift(mu):
            update = client.local_update(
                model, global_weights, 16, 3, np.random.default_rng(0), proximal_mu=mu
            )
            return sum(
                np.abs(update.weights[i][name] - global_weights[i][name]).sum()
                for i in range(len(global_weights))
                for name in global_weights[i]
            )

        assert drift(mu=1.0) < drift(mu=0.0)


class TestSurrogateBackend:
    def test_round_improves_accuracy_with_iid_data(self, rng):
        profiles = synthesize_data_profiles(list(range(20)), "iid", 10, 300, rng)
        backend = SurrogateTrainingBackend(
            CNN_MNIST, profiles, FedAvgAggregator(), GlobalParams.from_setting("S4"), rng
        )
        before = backend.accuracy
        result = backend.run_round(list(range(10)))
        assert result.previous_accuracy == pytest.approx(before)
        assert result.accuracy >= before - 0.02
        assert result.num_updates == 10

    def test_unknown_participant_rejected(self, rng):
        profiles = synthesize_data_profiles(list(range(5)), "iid", 10, 300, rng)
        backend = SurrogateTrainingBackend(
            CNN_MNIST, profiles, FedAvgAggregator(), GlobalParams.from_setting("S4"), rng
        )
        with pytest.raises(SimulationError):
            backend.run_round([99])

    def test_empty_profiles_rejected(self, rng):
        with pytest.raises(SimulationError):
            SurrogateTrainingBackend(
                CNN_MNIST, {}, FedAvgAggregator(), GlobalParams.from_setting("S4"), rng
            )


class TestNumpyBackend:
    @pytest.fixture
    def backend(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 6, "iid", rng)
        test = make_synthetic_mnist(num_samples=120, seed=9)
        return NumpyTrainingBackend(
            model=_small_mlp(),
            federated_dataset=federated,
            aggregator=FedAvgAggregator(),
            global_params=GlobalParams(batch_size=16, local_epochs=1, num_participants=3),
            test_features=test.features,
            test_labels=test.labels,
            learning_rate=0.1,
            rng=rng,
        )

    def test_accuracy_improves_over_rounds(self, backend):
        initial = backend.accuracy
        for _ in range(4):
            result = backend.run_round([0, 1, 2])
        assert result.accuracy > initial

    def test_empty_round_is_a_noop(self, backend):
        before = backend.accuracy
        result = backend.run_round([])
        assert result.accuracy == pytest.approx(before)
        assert result.num_updates == 0

    def test_global_weights_returns_copy(self, backend):
        weights = backend.global_weights
        weights[1]["weight"][:] = 0.0
        assert not np.allclose(backend.global_weights[1]["weight"], 0.0)

    def test_fedprox_backend_runs(self, dataset, rng):
        federated = FederatedDataset.partition(dataset, 4, "non_iid_50", rng)
        test = make_synthetic_mnist(num_samples=80, seed=3)
        backend = NumpyTrainingBackend(
            model=_small_mlp(),
            federated_dataset=federated,
            aggregator=FedProxAggregator(mu=0.01),
            global_params=GlobalParams(batch_size=16, local_epochs=1, num_participants=2),
            test_features=test.features,
            test_labels=test.labels,
            rng=rng,
        )
        result = backend.run_round([0, 1])
        assert 0.0 <= result.accuracy <= 1.0
