"""Tests for the FedAvg / FedProx / FedNova / FEDL aggregation algorithms."""

import numpy as np
import pytest

from repro.exceptions import PolicyError
from repro.fl.aggregation import (
    ClientUpdate,
    FedAvgAggregator,
    FedNovaAggregator,
    FedProxAggregator,
    FEDLAggregator,
    get_aggregator,
)


def _weights(value, shape=(2, 2)):
    return [{"weight": np.full(shape, float(value)), "bias": np.full((2,), float(value))}]


def _update(device_id, value, num_samples, num_steps=5):
    return ClientUpdate(
        device_id=device_id,
        weights=_weights(value),
        num_samples=num_samples,
        num_steps=num_steps,
    )


class TestFedAvg:
    def test_weighted_average(self):
        aggregator = FedAvgAggregator()
        new = aggregator.aggregate(_weights(0.0), [_update(0, 1.0, 100), _update(1, 3.0, 300)])
        assert np.allclose(new[0]["weight"], 2.5)
        assert np.allclose(new[0]["bias"], 2.5)

    def test_single_client_copies_weights(self):
        aggregator = FedAvgAggregator()
        new = aggregator.aggregate(_weights(0.0), [_update(0, 7.0, 10)])
        assert np.allclose(new[0]["weight"], 7.0)

    def test_empty_updates_rejected(self):
        with pytest.raises(PolicyError):
            FedAvgAggregator().aggregate(_weights(0.0), [])

    def test_zero_sample_updates_rejected(self):
        with pytest.raises(PolicyError):
            FedAvgAggregator().aggregate(_weights(0.0), [_update(0, 1.0, 0)])


class TestFedProx:
    def test_same_aggregation_as_fedavg(self):
        updates = [_update(0, 1.0, 100), _update(1, 2.0, 100)]
        fedavg = FedAvgAggregator().aggregate(_weights(0.0), updates)
        fedprox = FedProxAggregator(mu=0.05).aggregate(_weights(0.0), updates)
        assert np.allclose(fedavg[0]["weight"], fedprox[0]["weight"])

    def test_exposes_client_proximal_mu(self):
        assert FedProxAggregator(mu=0.05).client_proximal_mu == pytest.approx(0.05)
        assert FedAvgAggregator().client_proximal_mu == 0.0

    def test_invalid_mu(self):
        with pytest.raises(PolicyError):
            FedProxAggregator(mu=-1.0)


class TestFedNova:
    def test_equal_steps_matches_fedavg(self):
        """With identical local step counts, normalised averaging reduces to FedAvg."""
        updates = [_update(0, 1.0, 100, num_steps=5), _update(1, 3.0, 100, num_steps=5)]
        fedavg = FedAvgAggregator().aggregate(_weights(0.0), updates)
        fednova = FedNovaAggregator().aggregate(_weights(0.0), updates)
        assert np.allclose(fedavg[0]["weight"], fednova[0]["weight"], atol=1e-9)

    def test_objective_consistency_under_heterogeneous_steps(self):
        """Clients with equal *per-step* progress but very different step counts must not
        bias the aggregate (the objective-inconsistency fix of FedNova): the result equals
        FedAvg's even though one client ran 10x more local steps."""
        global_weights = _weights(0.0)
        consistent = [_update(0, 10.0, 100, num_steps=50), _update(1, 1.0, 100, num_steps=5)]
        fedavg = FedAvgAggregator().aggregate(global_weights, consistent)
        fednova = FedNovaAggregator().aggregate(global_weights, consistent)
        assert np.allclose(fednova[0]["weight"], fedavg[0]["weight"])

    def test_result_depends_on_per_step_progress(self):
        """When per-step progress differs across clients, FedNova deviates from FedAvg by
        re-weighting each client's normalised direction."""
        global_weights = _weights(0.0)
        inconsistent = [_update(0, 10.0, 100, num_steps=50), _update(1, 2.0, 100, num_steps=5)]
        fedavg = FedAvgAggregator().aggregate(global_weights, inconsistent)
        fednova = FedNovaAggregator().aggregate(global_weights, inconsistent)
        assert not np.allclose(fednova[0]["weight"], fedavg[0]["weight"])

    def test_robustness_flag_exceeds_fedavg(self):
        assert FedNovaAggregator.surrogate_robustness > FedAvgAggregator.surrogate_robustness


class TestFEDL:
    def test_partial_move_toward_average(self):
        aggregator = FEDLAggregator(eta=0.5)
        new = aggregator.aggregate(_weights(0.0), [_update(0, 4.0, 100)])
        assert np.allclose(new[0]["weight"], 2.0)

    def test_eta_one_matches_fedavg(self):
        updates = [_update(0, 1.0, 50), _update(1, 5.0, 150)]
        fedavg = FedAvgAggregator().aggregate(_weights(0.0), updates)
        fedl = FEDLAggregator(eta=1.0).aggregate(_weights(0.0), updates)
        assert np.allclose(fedavg[0]["weight"], fedl[0]["weight"])

    def test_invalid_eta(self):
        with pytest.raises(PolicyError):
            FEDLAggregator(eta=0.0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["fedavg", "fedprox", "fednova", "fedl"])
    def test_get_aggregator(self, name):
        assert get_aggregator(name).name == name

    def test_instance_passthrough(self):
        instance = FedAvgAggregator()
        assert get_aggregator(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(PolicyError):
            get_aggregator("fedsgd")

    def test_invalid_client_update(self):
        with pytest.raises(PolicyError):
            ClientUpdate(0, _weights(0.0), num_samples=-1, num_steps=1)
