"""Tests for convergence tracking and efficiency metrics."""

import pytest

from repro.exceptions import SimulationError
from repro.fl.metrics import ConvergenceTracker, EfficiencySummary, relative_improvement


class TestConvergenceTracker:
    def test_converges_when_target_reached(self):
        tracker = ConvergenceTracker(target_accuracy=0.9)
        assert not tracker.update(0, 0.5)
        assert tracker.update(1, 0.92)
        assert tracker.converged
        assert tracker.converged_round == 1

    def test_patience_requires_sustained_accuracy(self):
        tracker = ConvergenceTracker(target_accuracy=0.9, patience=2)
        assert not tracker.update(0, 0.91)
        assert not tracker.update(1, 0.85)
        assert not tracker.update(2, 0.91)
        assert tracker.update(3, 0.92)
        assert tracker.converged_round == 3

    def test_stays_converged(self):
        tracker = ConvergenceTracker(0.9)
        tracker.update(0, 0.95)
        assert tracker.update(1, 0.2)
        assert tracker.converged_round == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            ConvergenceTracker(target_accuracy=0.0)
        with pytest.raises(SimulationError):
            ConvergenceTracker(0.9, patience=0)


class TestEfficiencySummary:
    def _summary(self, converged=True, participant=100.0, global_j=400.0):
        return EfficiencySummary(
            converged=converged,
            rounds_executed=50,
            convergence_round=40 if converged else None,
            convergence_time_s=200.0,
            total_time_s=250.0,
            final_accuracy=0.96,
            participant_energy_j=participant,
            global_energy_j=global_j,
        )

    def test_ppw_is_reciprocal_energy(self):
        summary = self._summary()
        assert summary.local_ppw == pytest.approx(1 / 100.0)
        assert summary.global_ppw == pytest.approx(1 / 400.0)

    def test_zero_energy_gives_zero_ppw(self):
        summary = self._summary(participant=0.0, global_j=0.0)
        assert summary.local_ppw == 0.0
        assert summary.global_ppw == 0.0

    def test_convergence_reference_uses_total_when_not_converged(self):
        converged = self._summary(converged=True)
        failed = self._summary(converged=False)
        assert converged.convergence_speedup_reference_s == pytest.approx(200.0)
        assert failed.convergence_speedup_reference_s == pytest.approx(250.0)


class TestRelativeImprovement:
    def test_ratio(self):
        assert relative_improvement(4.0, 2.0) == pytest.approx(2.0)

    def test_zero_baseline(self):
        with pytest.raises(SimulationError):
            relative_improvement(1.0, 0.0)
