"""Tests for the global configuration objects."""

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    DEFAULT_TIER_COUNTS,
    GLOBAL_PARAMETER_SETTINGS,
    GlobalParams,
    SimulationConfig,
)
from repro.exceptions import ConfigurationError


class TestGlobalParams:
    def test_defaults_are_valid(self):
        params = GlobalParams()
        assert params.batch_size > 0
        assert params.local_epochs > 0
        assert params.num_participants > 0

    @pytest.mark.parametrize(
        "setting, expected",
        [("S1", (32, 10, 20)), ("S2", (32, 5, 20)), ("S3", (16, 5, 20)), ("S4", (16, 5, 10))],
    )
    def test_table5_settings(self, setting, expected):
        assert GlobalParams.from_setting(setting).as_tuple() == expected

    def test_setting_name_is_case_insensitive(self):
        assert GlobalParams.from_setting("s2") == GlobalParams.from_setting("S2")

    def test_unknown_setting_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalParams.from_setting("S9")

    @pytest.mark.parametrize("field", ["batch_size", "local_epochs", "num_participants"])
    def test_non_positive_values_rejected(self, field):
        with pytest.raises(ConfigurationError):
            GlobalParams(**{field: 0})

    def test_all_registered_settings_construct(self):
        for name in GLOBAL_PARAMETER_SETTINGS:
            params = GlobalParams.from_setting(name)
            assert params.as_tuple() == GLOBAL_PARAMETER_SETTINGS[name]


class TestSimulationConfig:
    def test_default_matches_paper_fleet(self):
        config = SimulationConfig()
        assert config.num_devices == 200
        assert config.tier_counts == DEFAULT_TIER_COUNTS
        assert sum(config.tier_counts.values()) == 200

    def test_tier_counts_must_sum_to_num_devices(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_devices=10, tier_counts={"high": 1, "mid": 2, "low": 3})

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_devices=2, tier_counts={"high": 1, "ultra": 1})

    def test_target_accuracy_bounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(target_accuracy=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(target_accuracy=1.5)

    @given(num_devices=st.integers(min_value=6, max_value=400))
    def test_small_preserves_total_and_tiers(self, num_devices):
        config = SimulationConfig.small(num_devices=num_devices)
        assert sum(config.tier_counts.values()) == num_devices
        assert all(count >= 1 for count in config.tier_counts.values())

    def test_small_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig.small(num_devices=2)
