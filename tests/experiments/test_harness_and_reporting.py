"""Tests for the experiment harness and report formatting."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.harness import (
    run_cluster_sweep,
    run_policy_comparison,
    run_simulation,
    run_static_cluster,
    run_with_reference,
)
from repro.experiments.reporting import OUTPUT_FORMATS, format_table, render_rows
from repro.experiments.settings import (
    BASELINE_POLICIES,
    CLUSTER_TEMPLATES,
    EVALUATION_POLICIES,
    GLOBAL_PARAMETER_SETTINGS,
)
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture
def fast_spec():
    return ScenarioSpec(workload="cnn-mnist", setting="S4", num_devices=30, max_rounds=25, seed=3)


class TestSettings:
    def test_policy_lineups(self):
        assert "fedavg-random" in BASELINE_POLICIES
        assert "autofl" in EVALUATION_POLICIES and "ofl" in EVALUATION_POLICIES
        assert set(GLOBAL_PARAMETER_SETTINGS) == {"S1", "S2", "S3", "S4"}
        assert set(CLUSTER_TEMPLATES) == {f"C{i}" for i in range(1, 8)}


class TestRunSimulation:
    def test_produces_result_with_rounds(self, fast_spec):
        result = run_simulation(fast_spec, "fedavg-random")
        assert result.num_rounds >= 1
        assert result.policy_name == "fedavg-random"
        assert result.workload_name == "cnn-mnist"

    def test_seed_offset_changes_outcome(self, fast_spec):
        base = run_simulation(fast_spec, "fedavg-random")
        shifted = run_simulation(fast_spec, "fedavg-random", seed_offset=17)
        assert base.selection_history() != shifted.selection_history()

    def test_deterministic_for_same_spec(self, fast_spec):
        first = run_simulation(fast_spec, "fedavg-random")
        second = run_simulation(fast_spec, "fedavg-random")
        assert first.selection_history() == second.selection_history()
        assert first.total_global_energy_j == pytest.approx(second.total_global_energy_j)


class TestRunPolicyComparison:
    def test_rows_normalised_to_baseline(self, fast_spec):
        _results, rows = run_policy_comparison(
            fast_spec, policies=("fedavg-random", "performance"), max_rounds=20
        )
        by_name = {row.policy: row for row in rows}
        assert by_name["fedavg-random"].ppw_global == pytest.approx(1.0)
        assert by_name["fedavg-random"].convergence_speedup == pytest.approx(1.0)
        assert by_name["performance"].ppw_global > 0

    def test_baseline_must_be_included(self, fast_spec):
        with pytest.raises(ConfigurationError):
            run_policy_comparison(fast_spec, policies=("performance",), baseline="fedavg-random")


class TestClusterSweepAndReference:
    def test_cluster_sweep_contains_all_clusters(self, fast_spec):
        ppw = run_cluster_sweep(fast_spec, clusters=("C1", "C7"), rounds=5)
        assert set(ppw) == {"C0", "C1", "C7"}
        assert ppw["C0"] == pytest.approx(1.0)
        assert all(value > 0 for value in ppw.values())

    def test_static_cluster_run(self, fast_spec):
        result = run_static_cluster(fast_spec, {"high": 5, "mid": 10, "low": 5}, max_rounds=10)
        assert result.num_rounds >= 1

    def test_run_with_reference_reports_accuracy(self, fast_spec):
        report = run_with_reference(fast_spec, "autofl", "ofl", rounds=10)
        assert 0.0 <= report.participant_accuracy <= 1.0
        assert 0.0 <= report.target_accuracy <= 1.0
        assert set(report.tier_composition) == {"high", "mid", "low"}
        assert sum(report.tier_composition.values()) == pytest.approx(1.0, abs=1e-6)

    def test_run_with_reference_honours_fleet_dynamics(self, fast_spec):
        # Under low availability both the policy and the oracle reference must select
        # from the shrunken online fleet; the engine raises if either ignores the mask,
        # so a clean run pins the dynamics wiring of the manual harness loop.
        import dataclasses

        flaky = dataclasses.replace(
            fast_spec, availability="bernoulli", dropout_rate=0.2
        )
        report = run_with_reference(flaky, "autofl", "ofl", rounds=10)
        assert 0.0 <= report.participant_accuracy <= 1.0


class TestFormatTable:
    def test_basic_formatting(self):
        table = format_table(["policy", "ppw"], [["autofl", 4.12345], ["random", 1.0]])
        lines = table.splitlines()
        assert lines[0].startswith("policy")
        assert "4.123" in table
        assert len(lines) == 4

    def test_bool_rendering(self):
        table = format_table(["converged"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestRenderRows:
    HEADERS = ("policy", "energy", "converged")
    ROWS = [("autofl", 4.12345, True), ("random", float("nan"), False)]

    def test_table_format_matches_format_table(self):
        assert render_rows(self.HEADERS, self.ROWS, "table") == format_table(
            self.HEADERS, self.ROWS
        )

    def test_csv_format_keeps_raw_values(self):
        import csv
        import io

        text = render_rows(self.HEADERS, self.ROWS, "csv")
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == list(self.HEADERS)
        assert parsed[1][0] == "autofl"
        assert float(parsed[1][1]) == 4.12345  # unrounded, unlike the table rendering
        assert len(parsed) == 3

    def test_json_format_yields_objects_with_null_for_nan(self):
        import json

        payload = json.loads(render_rows(self.HEADERS, self.ROWS, "json"))
        assert payload[0] == {"policy": "autofl", "energy": 4.12345, "converged": True}
        assert payload[1]["energy"] is None  # strict JSON has no NaN literal

    def test_unknown_format_rejected(self):
        assert set(OUTPUT_FORMATS) == {"table", "csv", "json"}
        with pytest.raises(ConfigurationError, match="unknown output format"):
            render_rows(self.HEADERS, self.ROWS, "yaml")

    def test_mismatched_row_rejected_in_every_format(self):
        for fmt in OUTPUT_FORMATS:
            with pytest.raises(ConfigurationError):
                render_rows(["a", "b"], [(1,)], fmt)
