"""Tests for the declarative experiment specs, sweep grids and spec hashing."""

import pytest

from repro.exceptions import ConfigurationError, DataError, PolicyError
from repro.experiments.spec import ExperimentSpec, Sweep, parse_axis
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture
def base():
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=30, max_rounds=10, seed=3),
        policy="fedavg-random",
    )


class TestValidation:
    def test_valid_spec_passes_and_chains(self, base):
        assert base.validate() is base

    def test_unknown_policy(self, base):
        with pytest.raises(PolicyError, match="unknown policy"):
            base.with_axis("policy", "best-effort").validate()

    def test_unknown_workload(self, base):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            base.with_axis("workload", "resnet-50").validate()

    def test_unknown_setting(self, base):
        with pytest.raises(ConfigurationError, match="unknown global parameter setting"):
            base.with_axis("setting", "S9").validate()

    def test_unknown_interference(self, base):
        with pytest.raises(ConfigurationError, match="unknown interference"):
            base.with_axis("interference", "mild").validate()

    def test_unknown_network(self, base):
        with pytest.raises(ConfigurationError, match="unknown network"):
            base.with_axis("network", "flaky").validate()

    def test_unknown_data_distribution(self, base):
        with pytest.raises(DataError, match="unknown data distribution"):
            base.with_axis("data_distribution", "non_iid_25").validate()

    def test_unknown_aggregator(self, base):
        with pytest.raises(PolicyError, match="unknown aggregator"):
            base.with_axis("aggregator", "fedsgd").validate()

    def test_unknown_availability(self, base):
        with pytest.raises(ConfigurationError, match="unknown availability process"):
            base.with_axis("availability", "sometimes-on").validate()

    def test_typo_gets_suggestion(self, base):
        with pytest.raises(PolicyError, match="did you mean 'autofl'"):
            base.with_axis("policy", "autofk").validate()

    def test_n_seeds_must_be_positive(self, base):
        with pytest.raises(ConfigurationError, match="n_seeds"):
            ExperimentSpec(scenario=base.scenario, n_seeds=0)


class TestAxes:
    def test_experiment_axis(self, base):
        derived = base.with_axis("policy", "autofl")
        assert derived.policy == "autofl"
        assert derived.scenario == base.scenario

    def test_scenario_axis(self, base):
        derived = base.with_axis("setting", "S1")
        assert derived.scenario.setting == "S1"
        assert derived.policy == base.policy

    def test_unknown_axis_suggests(self, base):
        with pytest.raises(ConfigurationError, match="did you mean 'network'"):
            base.with_axis("networks", "weak")


class TestSeedReplication:
    def test_seed_specs_enumerate_consecutive_seeds(self, base):
        replicated = base.with_axis("n_seeds", 3)
        units = replicated.seed_specs()
        assert [unit.scenario.seed for unit in units] == [3, 4, 5]
        assert all(unit.n_seeds == 1 for unit in units)

    def test_single_seed_is_identity(self, base):
        assert base.seed_specs() == [base]


class TestSpecHash:
    def test_hash_is_deterministic(self, base):
        assert base.spec_hash() == base.spec_hash()
        rebuilt = ExperimentSpec(
            scenario=ScenarioSpec(num_devices=30, max_rounds=10, seed=3),
            policy="fedavg-random",
        )
        assert rebuilt.spec_hash() == base.spec_hash()

    def test_hash_changes_with_any_axis(self, base):
        seen = {base.spec_hash()}
        for axis, value in [
            ("policy", "autofl"),
            ("setting", "S1"),
            ("seed", 4),
            ("n_seeds", 2),
            ("num_devices", 31),
            ("availability", "diurnal"),
            ("dropout_rate", 0.1),
            ("churn_rate", 0.05),
        ]:
            seen.add(base.with_axis(axis, value).spec_hash())
        assert len(seen) == 9

    def test_roundtrip_through_dict_preserves_hash(self, base):
        clone = ExperimentSpec.from_dict(base.to_dict())
        assert clone == base
        assert clone.spec_hash() == base.spec_hash()

    def test_short_hash_prefixes_full_hash(self, base):
        assert base.spec_hash().startswith(base.short_hash)


class TestSweep:
    def test_cartesian_expansion_order(self, base):
        sweep = Sweep(base, policy=["fedavg-random", "performance"], setting=["S3", "S4"])
        assert sweep.size == len(sweep) == 4
        points = [(spec.policy, spec.scenario.setting) for spec in sweep.expand()]
        assert points == [
            ("fedavg-random", "S3"),
            ("fedavg-random", "S4"),
            ("performance", "S3"),
            ("performance", "S4"),
        ]

    def test_axes_mapping_form(self, base):
        sweep = Sweep(base, {"setting": ("S1", "S2")})
        assert [spec.scenario.setting for spec in sweep.expand()] == ["S1", "S2"]

    def test_empty_axis_rejected(self, base):
        with pytest.raises(ConfigurationError, match="no values"):
            Sweep(base, policy=[])

    def test_no_axes_rejected(self, base):
        with pytest.raises(ConfigurationError, match="at least one axis"):
            Sweep(base)

    def test_duplicate_axis_rejected(self, base):
        with pytest.raises(ConfigurationError, match="given twice"):
            Sweep(base, {"policy": ("autofl",)}, policy=("power",))

    def test_bad_axis_name_fails_before_running(self, base):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            Sweep(base, polcy=["autofl"])

    def test_expansion_validates_names(self, base):
        sweep = Sweep(base, policy=["fedavg-random", "autofk"])
        with pytest.raises(PolicyError, match="did you mean"):
            sweep.expand()


class TestParseAxis:
    def test_string_axis(self):
        assert parse_axis("policy=a,b") == ("policy", ("a", "b"))

    def test_integer_axis_with_dashes(self):
        assert parse_axis("num-devices=30,50") == ("num_devices", (30, 50))

    def test_bool_axis(self):
        assert parse_axis("stop_at_convergence=true,false") == (
            "stop_at_convergence",
            (True, False),
        )

    def test_float_axis_with_dashes(self):
        assert parse_axis("dropout-rate=0,0.1,0.25") == ("dropout_rate", (0.0, 0.1, 0.25))
        assert parse_axis("churn-rate=0.05") == ("churn_rate", (0.05,))

    def test_availability_axis_sweeps_as_string(self):
        assert parse_axis("availability=always-on,diurnal") == (
            "availability",
            ("always-on", "diurnal"),
        )

    @pytest.mark.parametrize(
        "text", ["policy", "=a,b", "policy=", "seed=three", "dropout-rate=lots"]
    )
    def test_malformed_axes_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_axis(text)
