"""Tests for the batch runner: executors, result store and spec-hash caching."""

import json
import os
import subprocess
import sys
import warnings

import pytest

from repro.exceptions import ConfigurationError, ExecutionError, ValidationError
from repro.experiments.harness import run_simulation
from repro.experiments.runner import (
    BatchRunner,
    ExperimentResult,
    MultiprocessExecutor,
    ResultStore,
    SerialExecutor,
    StaleResultWarning,
    StoreBackend,
    build_simulation,
    get_executor,
    run_experiment,
)
from repro.experiments.spec import ExperimentSpec, Sweep
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture
def base():
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=30, max_rounds=8, seed=3),
        policy="fedavg-random",
    )


@pytest.fixture
def sweep(base):
    return Sweep(base, policy=["fedavg-random", "performance"], setting=["S3", "S4"])


class TestRunExperiment:
    def test_matches_the_harness_driver(self, base):
        result = run_experiment(base)
        reference = run_simulation(base.scenario, base.policy)
        assert result.summaries == (reference.summary(),)

    def test_seed_replication_averages(self, base):
        replicated = run_experiment(base.with_axis("n_seeds", 2))
        singles = [run_experiment(unit) for unit in base.with_axis("n_seeds", 2).seed_specs()]
        assert replicated.summaries == tuple(s.summaries[0] for s in singles)
        assert replicated.n_seeds == 2
        assert 0.0 <= replicated.convergence_rate <= 1.0

    def test_build_simulation_validates(self, base):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            build_simulation(base.with_axis("workload", "resnet"))

    def test_result_roundtrip(self, base):
        result = run_experiment(base)
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.spec == result.spec
        assert clone.summaries == result.summaries


class TestExecutors:
    def test_multiprocess_matches_serial(self, sweep):
        specs = sweep.expand()
        serial = SerialExecutor().map(specs)
        parallel = MultiprocessExecutor(max_workers=2).map(specs)
        assert [r.summaries for r in parallel] == [r.summaries for r in serial]
        assert [r.spec for r in parallel] == specs

    def test_get_executor(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        executor = get_executor("process", jobs=3)
        assert isinstance(executor, MultiprocessExecutor)
        assert executor.max_workers == 3
        with pytest.raises(ConfigurationError, match="unknown executor"):
            get_executor("threads")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            MultiprocessExecutor(max_workers=0)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path, base):
        store = ResultStore(tmp_path / "results.jsonl")
        assert store.get(base) is None
        result = run_experiment(base)
        store.put(result)
        assert base in store
        cached = store.get(base)
        assert cached.cached and cached.summaries == result.summaries

    def test_reload_from_disk(self, tmp_path, base):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(run_experiment(base))
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get(base.spec_hash()) is not None

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="line 1"):
            ResultStore(path)

    def test_line_missing_hash_reports_location(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"schema": 1, "spec": {}, "summaries": []}\n')
        with pytest.raises(ConfigurationError, match="line 1"):
            ResultStore(path)

    def test_stale_spec_schema_entries_warn_with_both_versions(self, tmp_path, base):
        # A schema bump must not brick existing stores: stale lines (whose hashes can
        # never be looked up again) are skipped — but loudly, naming both versions, so
        # users understand the resulting cache misses.
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(run_experiment(base))
        stale = '{"hash": "deadbeef", "spec": {"schema": 1}, "summaries": []}\n'
        with path.open("a", encoding="utf-8") as handle:
            handle.write(stale)
        with pytest.warns(StaleResultWarning, match=r"schema 1.*reads schema 3"):
            reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get(base.spec_hash()) is not None

    def test_current_schema_store_loads_without_warning(self, tmp_path, base):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(run_experiment(base))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # Any warning fails the test.
            reloaded = ResultStore(path)
        assert len(reloaded) == 1

    def test_cache_hit_and_miss_paths(self, tmp_path, base):
        # Explicit hit/miss coverage: a fresh spec misses, a stored one hits (flagged
        # cached), a stale-schema line stays a miss for its hash.
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        assert store.get(base) is None  # Miss on an empty store.
        assert base not in store
        store.put(run_experiment(base))
        hit = store.get(base)
        assert hit is not None and hit.cached  # Hit after put.
        other = base.with_axis("seed", 123)
        assert store.get(other) is None  # Different spec hash still misses.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"hash": "deadbeef", "spec": {"schema": 1}, "summaries": []}\n')
        with pytest.warns(StaleResultWarning):
            reloaded = ResultStore(path)
        assert reloaded.get("deadbeef") is None  # Stale entries never serve hits.
        assert reloaded.get(base) is not None


class TestBatchRunner:
    def test_first_run_executes_second_run_hits_cache(self, tmp_path, sweep):
        path = tmp_path / "results.jsonl"
        first = BatchRunner(store=ResultStore(path)).run(sweep)
        assert (first.total, first.cache_hits, first.executed) == (4, 0, 4)
        second = BatchRunner(store=ResultStore(path)).run(sweep)
        assert (second.total, second.cache_hits, second.executed) == (4, 4, 0)
        assert all(result.cached for result in second.results)
        assert [r.summaries for r in second.results] == [r.summaries for r in first.results]

    def test_duplicate_points_run_once(self, base):
        report = BatchRunner().run([base, base])
        assert report.total == 2
        assert report.executed == 1
        assert report.results[0].summaries == report.results[1].summaries

    def test_runs_without_store(self, base):
        report = BatchRunner().run([base])
        assert report.cache_hits == 0 and report.executed == 1

    def test_results_preserve_grid_order(self, sweep):
        report = BatchRunner().run(sweep)
        assert [r.spec for r in report.results] == sweep.expand()


class TestValidateHook:
    """BatchRunner(validate=True) self-checks every executed grid point."""

    @pytest.fixture
    def flaky(self):
        # A dynamics-heavy spec so the validated path exercises faults and availability.
        return ExperimentSpec(
            scenario=ScenarioSpec(
                num_devices=30,
                max_rounds=5,
                seed=3,
                setting="S4",
                availability="bernoulli",
                dropout_rate=0.2,
            ),
            policy="fedavg-random",
            stop_at_convergence=False,
        )

    def test_validated_run_matches_unvalidated(self, flaky):
        # Auditing must be an observer: attaching it never perturbs the trajectory.
        assert run_experiment(flaky, validate=True).summaries == run_experiment(flaky).summaries

    def test_batch_runner_validates_executed_points(self, flaky):
        report = BatchRunner(validate=True).run([flaky])
        assert report.executed == 1
        assert report.results[0].summaries

    def test_validate_threads_through_the_process_executor(self, flaky):
        results = MultiprocessExecutor(max_workers=2).map(
            [flaky, flaky.with_axis("seed", 4)], validate=True
        )
        assert len(results) == 2

    def test_violation_raises_validation_error(self, flaky, monkeypatch):
        # Corrupt the assembled records to prove the hook actually audits them.
        from repro.sim.results import SimulationResult

        original = SimulationResult.append

        def corrupting_append(self, record):
            import dataclasses as dc

            original(self, dc.replace(record, accuracy=2.0))

        monkeypatch.setattr(SimulationResult, "append", corrupting_append)
        with pytest.raises(ValidationError, match="accuracy"):
            run_experiment(flaky, validate=True)
        # The unvalidated path still accepts the tainted run (nothing audits it).
        assert run_experiment(flaky).summaries


def _crashing_spec(base):
    """A spec that passes registry validation but fails inside the worker.

    The tier counts contradict the fleet size, which only surfaces when the
    environment is built — i.e. in the executing process, exactly where an opaque
    ``BrokenProcessPool``/pickle error used to come from.
    """
    return base.with_axis("tier_counts", {"low": 1, "mid": 1, "high": 1})


class TestMultiprocessFailureIsolation:
    """A crashing grid point must not take down the batch — nor hide its traceback."""

    def test_failure_names_the_spec_and_keeps_the_original_traceback(self, base):
        bogus = _crashing_spec(base)
        with pytest.raises(ExecutionError) as excinfo:
            MultiprocessExecutor(max_workers=2).map([base, bogus])
        error = excinfo.value
        assert [failure.spec_hash for failure in error.failures] == [bogus.spec_hash()]
        failure = error.failures[0]
        assert failure.error_type == "ConfigurationError"
        assert "tier_counts" in failure.message
        assert "Traceback" in failure.traceback  # the worker's own, not a pickle artefact
        # The message names the failing hash and how many points survived.
        assert bogus.spec_hash()[:12] in str(error)
        assert "1 completed" in str(error)

    def test_other_specs_keep_running_and_are_reported_completed(self, base):
        bogus = _crashing_spec(base)
        others = [base, base.with_axis("seed", 7)]
        with pytest.raises(ExecutionError) as excinfo:
            MultiprocessExecutor(max_workers=2).map([others[0], bogus, others[1]])
        completed = excinfo.value.completed
        assert sorted(r.spec.spec_hash() for r in completed) == sorted(
            spec.spec_hash() for spec in others
        )

    def test_batch_runner_flushes_completed_points_before_reraising(self, base, tmp_path):
        bogus = _crashing_spec(base)
        store = ResultStore(tmp_path / "results.jsonl")
        runner = BatchRunner(executor=MultiprocessExecutor(max_workers=2), store=store)
        with pytest.raises(ExecutionError):
            runner.run([base, bogus])
        assert store.get(base) is not None  # the good point survived the failure
        assert store.get(bogus) is None

    def test_on_result_callback_sees_each_success(self, sweep):
        specs = sweep.expand()
        seen = []
        results = MultiprocessExecutor(max_workers=2).map(specs, on_result=seen.append)
        assert sorted(r.spec.spec_hash() for r in seen) == sorted(
            r.spec.spec_hash() for r in results
        )


class TestKeyboardInterruptFlush:
    """An interrupted sweep must keep its finished points: resumable, not lost."""

    def test_serial_interrupt_flushes_then_reraises_and_resumes(
        self, base, tmp_path, monkeypatch
    ):
        import repro.experiments.runner as runner_module

        other = base.with_axis("seed", 42)
        real = run_experiment
        ran = []

        def interrupt_after_first(spec, validate=False):
            if ran:
                raise KeyboardInterrupt
            ran.append(spec)
            return real(spec, validate=validate)

        monkeypatch.setattr(runner_module, "run_experiment", interrupt_after_first)
        store = ResultStore(tmp_path / "results.jsonl")
        with pytest.raises(KeyboardInterrupt):
            BatchRunner(store=store).run([base, other])
        assert store.get(base) is not None  # completed before the interrupt: flushed
        assert store.get(other) is None

        monkeypatch.setattr(runner_module, "run_experiment", real)
        resumed = BatchRunner(store=ResultStore(tmp_path / "results.jsonl")).run([base, other])
        assert resumed.cache_hits == 1  # the flushed point is served from cache
        assert resumed.executed == 1


class TestStoreBackendProtocol:
    def test_jsonl_store_satisfies_the_protocol(self, tmp_path):
        assert isinstance(ResultStore(tmp_path / "results.jsonl"), StoreBackend)

    def test_any_backend_works_as_the_runner_cache(self, base):
        class DictStore:
            def __init__(self):
                self.rows = {}

            def get(self, spec):
                key = spec if isinstance(spec, str) else spec.spec_hash()
                return self.rows.get(key)

            def put(self, result):
                self.rows[result.spec.spec_hash()] = result

            def __contains__(self, spec):
                return self.get(spec) is not None

            def __len__(self):
                return len(self.rows)

        store = DictStore()
        assert isinstance(store, StoreBackend)
        first = BatchRunner(store=store).run([base])
        second = BatchRunner(store=store).run([base])
        assert first.executed == 1 and second.cache_hits == 1


class TestSpecHashAcrossProcesses:
    def test_hash_is_stable_in_a_fresh_interpreter(self, base):
        """The cache key must not depend on interpreter state (e.g. dict order, PYTHONHASHSEED)."""
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        payload = json.dumps(base.to_dict())
        code = (
            "import json, sys\n"
            "from repro.experiments.spec import ExperimentSpec\n"
            "spec = ExperimentSpec.from_dict(json.loads(sys.stdin.read()))\n"
            "print(spec.spec_hash())\n"
        )
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="12345")
        child = subprocess.run(
            [sys.executable, "-c", code],
            input=payload,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert child.stdout.strip() == base.spec_hash()
