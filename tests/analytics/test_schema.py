"""Tests for the warehouse column schemas and row builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.schema import (
    NULL_STR,
    TABLE_KEYS,
    TABLES,
    bench_rows_from_record,
    column_kinds,
    empty_columns,
    identity_row,
    round_rows_from_golden,
    round_rows_from_result,
    rows_to_columns,
    run_row_from_golden,
    run_row_from_result,
    run_rows_from_experiment,
    table_schema,
)
from repro.exceptions import AnalyticsError
from repro.experiments.runner import BatchRunner
from repro.validation.golden import GoldenStore, golden_spec


class TestSchemaShape:
    def test_every_table_has_key_columns(self):
        for table, columns in TABLES.items():
            names = {column.name for column in columns}
            for key in TABLE_KEYS[table]:
                assert key in names, f"{table} key {key} missing from schema"

    def test_unknown_table_raises(self):
        with pytest.raises(AnalyticsError, match="unknown warehouse table"):
            table_schema("runz")

    def test_column_kinds_partition(self):
        kinds = column_kinds("runs")
        assert kinds["policy"] == "str"
        assert kinds["final_accuracy"] == "num"
        assert set(kinds.values()) <= {"str", "num"}


class TestIdentityRow:
    def test_fields_come_from_the_spec(self, small_spec):
        row = identity_row(small_spec, "lbl", "run", "my-preset")
        assert row["label"] == "lbl"
        assert row["source"] == "run"
        assert row["spec_hash"] == small_spec.spec_hash()
        assert row["policy"] == "fedavg-random"
        assert row["workload"] == "cnn-mnist"
        assert row["num_devices"] == 30.0
        assert row["preset"] == "my-preset"

    def test_missing_preset_is_null_string(self, small_spec):
        assert identity_row(small_spec, "lbl", "run", None)["preset"] == NULL_STR


class TestResultRows:
    def test_one_round_row_per_record(self, small_result, small_spec):
        rows = round_rows_from_result(small_result, small_spec)
        assert len(rows) == small_result.num_rounds
        for row, record in zip(rows, small_result.records):
            assert row["round_index"] == float(record.round_index)
            assert row["round_time_s"] == record.round_time_s
            assert row["accuracy"] == record.accuracy
            assert row["num_selected"] == float(len(record.selected_ids))

    def test_run_row_matches_trajectory_totals(self, small_result, small_spec):
        row = run_row_from_result(small_result, small_spec)
        assert row["rounds_executed"] == float(small_result.num_rounds)
        assert row["total_time_s"] == float(small_result.total_time_s)
        assert row["final_accuracy"] == float(small_result.final_accuracy)
        assert row["participant_energy_j"] == float(
            small_result.total_participant_energy_j
        )
        assert row["global_energy_j"] == float(small_result.total_global_energy_j)


class TestGoldenRows:
    @pytest.fixture(scope="class")
    def golden(self, tmp_path_factory):
        store = GoldenStore(tmp_path_factory.mktemp("goldens"))
        return store.record("flaky-fleet", golden_spec("flaky-fleet", max_rounds=3))

    def test_round_rows_mirror_the_recorded_rows(self, golden):
        rows = round_rows_from_golden(golden)
        assert len(rows) == golden.num_rounds
        for row, recorded in zip(rows, golden.rows):
            assert row["round_index"] == float(recorded["round"])
            assert row["accuracy"] == recorded["accuracy"]
            assert row["num_aggregated"] == float(
                recorded["num_selected"] - recorded["num_dropped"] - recorded["num_failed"]
            )
        assert rows[0]["source"] == "golden"
        assert rows[0]["preset"] == "flaky-fleet"

    def test_run_row_sums_the_trajectory(self, golden):
        row = run_row_from_golden(golden)
        assert row["rounds_executed"] == float(golden.num_rounds)
        assert row["total_time_s"] == pytest.approx(
            sum(r["round_time_s"] for r in golden.rows)
        )
        assert row["final_accuracy"] == golden.rows[-1]["accuracy"]
        # Goldens are recorded without early stopping: convergence is unknowable.
        assert np.isnan(row["converged"])


class TestExperimentRows:
    def test_one_row_per_seed_replica(self, small_spec):
        import dataclasses

        spec = dataclasses.replace(small_spec, n_seeds=2).validate()
        report = BatchRunner().run([spec])
        (result,) = report.results
        rows = run_rows_from_experiment(result, label="lbl", preset="p")
        assert len(rows) == 2
        assert {row["seed"] for row in rows} == {
            float(unit.scenario.seed) for unit in spec.seed_specs()
        }
        for row, summary in zip(rows, result.summaries):
            assert row["final_accuracy"] == float(summary.final_accuracy)
            assert row["total_time_s"] == float(summary.total_time_s)
            # Store payloads keep summaries only: per-round failure totals unknown.
            assert np.isnan(row["total_straggler_drops"])


class TestBenchRows:
    def test_roundengine_record_yields_one_row_per_size(self):
        record = {
            "benchmark": "roundengine",
            "timestamp": "2026-01-01T00:00:00Z",
            "workload": "cnn-mnist",
            "seed": 0,
            "provenance": {"git_sha": "abc", "numpy": "2.4.6"},
            "results": [
                {"num_devices": 200, "scalar_rounds_per_s": 10.0,
                 "batch_rounds_per_s": 100.0, "speedup": 10.0},
                {"num_devices": 1000, "scalar_rounds_per_s": 1.0,
                 "batch_rounds_per_s": 50.0, "speedup": 50.0},
            ],
        }
        rows = bench_rows_from_record(record)
        assert [row["num_devices"] for row in rows] == [200.0, 1000.0]
        assert rows[0]["git_sha"] == "abc"
        assert rows[0]["numpy_version"] == "2.4.6"
        # The store-suite column is absent and materialises as the null string.
        assert rows_to_columns("bench", rows)["backend"][0] == NULL_STR

    def test_store_record_yields_one_row_per_backend(self):
        record = {
            "benchmark": "store",
            "timestamp": "t",
            "results": {
                "jsonl": {"entries": 10, "inserts_per_s": 1.0},
                "sqlite": {"entries": 10, "inserts_per_s": 2.0},
            },
        }
        rows = bench_rows_from_record(record)
        assert [row["backend"] for row in rows] == ["jsonl", "sqlite"]
        # The roundengine-suite column is absent and materialises as NaN.
        assert np.isnan(rows_to_columns("bench", rows)["speedup"][0])

    def test_unknown_record_kind_raises(self):
        with pytest.raises(AnalyticsError, match="unknown bench record kind"):
            bench_rows_from_record({"benchmark": "gpu"})


class TestRowsToColumns:
    def test_missing_cells_become_nulls(self):
        columns = rows_to_columns("runs", [{"label": "x", "policy": "autofl"}])
        assert columns["label"][0] == "x"
        assert columns["preset"][0] == NULL_STR
        assert np.isnan(columns["final_accuracy"][0])
        assert columns["final_accuracy"].dtype == np.float64

    def test_empty_columns_are_zero_row(self):
        columns = empty_columns("bench")
        assert all(column.shape == (0,) for column in columns.values())
        assert set(columns) == {c.name for c in table_schema("bench")}
