"""Tests for the columnar warehouse: backends, manifest, idempotent ingest."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analytics import Warehouse, get_backend, have_pyarrow
from repro.analytics.warehouse import MANIFEST_FILENAME, NumpyBackend
from repro.exceptions import AnalyticsError
from repro.experiments.runner import BatchRunner, ResultStore
from repro.service.store import ArtifactStore
from repro.validation.golden import GoldenStore, golden_spec



class TestBackends:
    def test_auto_resolves_to_an_available_backend(self):
        backend = get_backend("auto")
        assert backend.name == ("parquet" if have_pyarrow() else "numpy")

    def test_unknown_backend_raises(self):
        with pytest.raises(AnalyticsError, match="unknown warehouse backend"):
            get_backend("feather")

    @pytest.mark.skipif(have_pyarrow(), reason="pyarrow is installed")
    def test_parquet_without_pyarrow_raises(self):
        with pytest.raises(AnalyticsError, match="needs pyarrow"):
            get_backend("parquet")

    def test_roundtrip_preserves_columns(self, tmp_path, backend):
        columns = {
            "name": np.array(["a", "b"], dtype=str),
            "value": np.array([1.5, float("nan")], dtype=np.float64),
        }
        impl = get_backend(backend)
        path = tmp_path / f"t{impl.suffix}"
        impl.write(path, columns)
        loaded = impl.read(path)
        assert list(loaded["name"].astype(str)) == ["a", "b"]
        np.testing.assert_array_equal(loaded["value"], columns["value"])


class TestManifest:
    def test_backend_is_recorded_and_pinned(self, tmp_path, make_run_row):
        root = tmp_path / "wh"
        Warehouse(root, backend="numpy").append_rows("runs", [make_run_row()])
        manifest = json.loads((root / MANIFEST_FILENAME).read_text())
        assert manifest["backend"] == "numpy"
        # auto re-opens with the recorded backend even where pyarrow is available.
        assert Warehouse(root).backend.name == "numpy"

    def test_explicit_backend_mismatch_raises(self, tmp_path, make_run_row):
        root = tmp_path / "wh"
        Warehouse(root, backend="numpy").append_rows("runs", [make_run_row()])
        with pytest.raises(AnalyticsError, match="mix columnar formats"):
            Warehouse(root, backend="parquet")

    def test_corrupt_manifest_raises(self, tmp_path):
        root = tmp_path / "wh"
        root.mkdir()
        (root / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(AnalyticsError, match="corrupt warehouse manifest"):
            Warehouse(root)

    def test_stale_schema_version_raises(self, tmp_path):
        root = tmp_path / "wh"
        root.mkdir()
        (root / MANIFEST_FILENAME).write_text(json.dumps({"warehouse_schema": 0}))
        with pytest.raises(AnalyticsError, match="re-ingest"):
            Warehouse(root)

    def test_table_with_unexpected_columns_raises(self, tmp_path, make_run_row):
        root = tmp_path / "wh"
        warehouse = Warehouse(root, backend="numpy")
        warehouse.append_rows("runs", [make_run_row()])
        NumpyBackend().write(
            root / "runs.npz", {"bogus": np.array(["x"], dtype=str)}
        )
        with pytest.raises(AnalyticsError, match="holds columns"):
            Warehouse(root, backend="numpy").table("runs")


class TestIngestResult:
    def test_trajectory_lands_in_rounds_and_runs(self, tmp_path, backend, small_result, small_spec):
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        added = warehouse.ingest_result(small_result, small_spec, label="lbl", preset="p")
        assert added == small_result.num_rounds + 1
        assert warehouse.num_rows("rounds") == small_result.num_rounds
        assert warehouse.num_rows("runs") == 1
        assert warehouse.labels() == ["lbl"]

    def test_reingest_is_idempotent(self, tmp_path, backend, small_result, small_spec):
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        warehouse.ingest_result(small_result, small_spec, label="lbl")
        warehouse.ingest_result(small_result, small_spec, label="lbl")
        assert warehouse.num_rows("rounds") == small_result.num_rounds
        assert warehouse.num_rows("runs") == 1

    def test_distinct_labels_coexist(self, tmp_path, small_result, small_spec):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.ingest_result(small_result, small_spec, label="a")
        warehouse.ingest_result(small_result, small_spec, label="b")
        assert warehouse.num_rows("runs") == 2
        assert warehouse.labels() == ["a", "b"]

    def test_persists_across_reopen(self, tmp_path, backend, small_result, small_spec):
        root = tmp_path / "wh"
        Warehouse(root, backend=backend).ingest_result(small_result, small_spec)
        reopened = Warehouse(root)
        assert reopened.num_rows("rounds") == small_result.num_rounds
        accuracy = reopened.table("rounds")["accuracy"]
        np.testing.assert_array_equal(
            accuracy, [record.accuracy for record in small_result.records]
        )


class TestIngestStore:
    def _populated_store(self, tmp_path, small_spec, kind):
        import dataclasses

        path = tmp_path / ("results.jsonl" if kind == "jsonl" else "results.sqlite")
        store = ResultStore(path) if kind == "jsonl" else ArtifactStore(path)
        spec = dataclasses.replace(small_spec, n_seeds=2).validate()
        BatchRunner(store=store).run([spec])
        return path, spec

    @pytest.mark.parametrize("kind", ["sqlite", "jsonl"])
    def test_store_path_ingests_one_row_per_seed(self, tmp_path, small_spec, kind):
        path, spec = self._populated_store(tmp_path, small_spec, kind)
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        added = warehouse.ingest_store(path, label="baseline")
        assert added == spec.n_seeds
        assert warehouse.num_rows("runs") == spec.n_seeds
        assert warehouse.num_rows("rounds") == 0  # stores keep summaries only
        columns = warehouse.table("runs")
        assert set(columns["source"].astype(str)) == {"store"}
        assert set(columns["label"].astype(str)) == {"baseline"}

    def test_preset_column_carries_the_store_preset(self, tmp_path, small_spec):
        import dataclasses

        path = tmp_path / "results.sqlite"
        store = ArtifactStore(path)
        spec = dataclasses.replace(small_spec, n_seeds=1).validate()
        BatchRunner(store=store).run([spec])
        # Re-put with a preset tag, as the scheduler does for preset submissions.
        ((result, _preset),) = tuple(store.iter_results())
        store.put(result, preset="fleet-1k")
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.ingest_store(path)
        assert set(warehouse.table("runs")["preset"].astype(str)) == {"fleet-1k"}


class TestIngestGoldens:
    def test_golden_directory_ingests_rounds_and_runs(self, tmp_path, backend):
        directory = tmp_path / "goldens"
        store = GoldenStore(directory)
        golden = store.record("flaky-fleet", golden_spec("flaky-fleet", max_rounds=3))
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        added = warehouse.ingest_goldens(directory)
        assert added == golden.num_rounds + 1
        assert warehouse.labels() == ["golden"]
        columns = warehouse.table("rounds")
        assert set(columns["preset"].astype(str)) == {"flaky-fleet"}


class TestIngestBench:
    def test_bench_files_skip_unparseable(self, tmp_path):
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps(
                {
                    "benchmark": "roundengine",
                    "timestamp": "t",
                    "results": [{"num_devices": 10, "speedup": 2.0}],
                }
            )
        )
        (tmp_path / "BENCH_bad.json").write_text("{broken")
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        with pytest.warns(UserWarning, match="unparseable bench record"):
            added = warehouse.ingest_bench_files(tmp_path)
        assert added == 1
        assert warehouse.num_rows("bench") == 1

    def test_reingest_same_record_is_idempotent(self, tmp_path):
        record = {
            "benchmark": "roundengine",
            "timestamp": "t",
            "results": [{"num_devices": 10, "speedup": 2.0}],
        }
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.ingest_bench_record(record)
        warehouse.ingest_bench_record(record)
        assert warehouse.num_rows("bench") == 1


class TestDescribe:
    def test_receipt_shape(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows("runs", [make_run_row()])
        receipt = warehouse.describe()
        assert receipt["backend"] == "numpy"
        assert receipt["tables"] == {"rounds": 0, "runs": 1, "bench": 0, "metrics": 0}
