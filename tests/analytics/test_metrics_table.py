"""Tests for the warehouse ``metrics`` table: row building, ingest and query."""

import math

import pytest

from repro import telemetry
from repro.analytics import Warehouse, metrics_rows_from_snapshot, run_query
from repro.analytics.schema import TABLE_KEYS, TABLES


@pytest.fixture
def snapshot(tmp_path):
    """A written snapshot file with one of each instrument kind."""
    registry = telemetry.MetricsRegistry(enabled=True)
    registry.counter("repro_rounds_total", help="Rounds.").inc(6.0, policy="autofl")
    registry.gauge("repro_queue_depth").set(2.0)
    histogram = registry.histogram("repro_round_time_s", buckets=(1.0, 10.0))
    for value in (0.5, 0.7, 8.0):
        histogram.observe(value, policy="autofl")
    path = tmp_path / "metrics.json"
    telemetry.write_snapshot(registry, path)
    return path


class TestRowBuilder:
    def test_payload_and_bare_list_shapes(self, snapshot):
        payload = telemetry.read_snapshot(snapshot)
        rows = metrics_rows_from_snapshot(payload, label="run1")
        assert {row["name"] for row in rows} == {
            "repro_rounds_total", "repro_queue_depth", "repro_round_time_s",
        }
        by_name = {row["name"]: row for row in rows}
        assert by_name["repro_rounds_total"]["value"] == 6.0
        assert by_name["repro_rounds_total"]["labels"] == "policy=autofl"
        assert by_name["repro_round_time_s"]["count"] == 3.0
        assert by_name["repro_round_time_s"]["p50"] == 1.0
        assert all(row["ts"] == payload["ts"] for row in rows)
        # A bare entry list (no payload wrapper) carries no timestamp.
        bare = metrics_rows_from_snapshot(payload["metrics"])
        assert math.isnan(bare[0]["ts"])

    def test_rows_fit_the_table_schema(self, snapshot):
        columns = {column.name for column in TABLES["metrics"]}
        for row in metrics_rows_from_snapshot(telemetry.read_snapshot(snapshot)):
            assert set(row) <= columns
            assert set(TABLE_KEYS["metrics"]) <= set(row)


class TestIngestAndQuery:
    def test_ingest_metrics_is_idempotent(self, tmp_path, snapshot, backend):
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        added = warehouse.ingest_metrics(snapshot, label="obs")
        assert added == 3
        # Re-ingesting replaces same-key rows instead of duplicating them.
        warehouse.ingest_metrics(snapshot, label="obs")
        assert warehouse.num_rows("metrics") == 3
        assert "obs" in warehouse.describe()["labels"]

    def test_query_metrics_table(self, tmp_path, snapshot, backend):
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        warehouse.ingest_metrics(snapshot, label="obs")
        result = run_query(
            warehouse,
            table="metrics",
            where={"name": ("repro_round_time_s",)},
            aggs=("mean",),
        )
        assert result.matched_rows == 1
        row = dict(zip(result.headers, result.rows[0]))
        assert row["name"] == "repro_round_time_s"
        assert row["count:mean"] == pytest.approx(3.0)
        assert row["p50:mean"] == pytest.approx(1.0)

    def test_ingest_accepts_in_memory_payloads(self, tmp_path, backend):
        registry = telemetry.MetricsRegistry(enabled=True)
        registry.counter("c").inc(1.0)
        warehouse = Warehouse(tmp_path / "wh", backend=backend)
        assert warehouse.ingest_metrics(telemetry.snapshot_payload(registry)) == 1
