"""Tests for regression evals and the cross-run comparison report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    BenchFloor,
    Threshold,
    Warehouse,
    build_comparison_report,
    parse_bench_floor,
    parse_threshold,
    relative_delta,
    run_bench_floor_eval,
    run_regression_eval,
)
from repro.exceptions import AnalyticsError



@pytest.fixture
def warehouse(tmp_path, make_run_row):
    """Two ingest labels over two scenarios: the candidate regresses on one metric."""
    warehouse = Warehouse(tmp_path / "wh", backend="numpy")
    rows = []
    for label, energy, accuracy in (("good", 1000.0, 0.80), ("bad", 1500.0, 0.80)):
        rows.append(
            make_run_row(
                label=label, preset="fleet-1k", policy="autofl", spec_hash="h0",
                global_energy_j=energy, final_accuracy=accuracy,
            )
        )
        rows.append(
            make_run_row(
                label=label, preset="", workload="cnn-mnist", setting="S3",
                num_devices=200.0, policy="autofl", spec_hash="h1",
                global_energy_j=1000.0, final_accuracy=accuracy,
            )
        )
    warehouse.append_rows("runs", rows)
    return warehouse


class TestThresholds:
    def test_parse_lower_is_better(self):
        threshold = parse_threshold("global_energy_j=5")
        assert threshold == Threshold("global_energy_j", 0.05)
        assert threshold.passes(100.0, 104.0)
        assert not threshold.passes(100.0, 106.0)

    def test_parse_higher_is_better(self):
        threshold = parse_threshold("final-accuracy=+1")
        assert threshold == Threshold("final_accuracy", 0.01, higher_is_better=True)
        assert threshold.passes(0.80, 0.795)
        assert not threshold.passes(0.80, 0.78)

    def test_malformed_threshold_raises(self):
        for text in ("global_energy_j", "x=abc", "x=-5"):
            with pytest.raises(AnalyticsError):
                parse_threshold(text)

    def test_relative_delta_is_zero_safe(self):
        assert relative_delta(0.0, 0.0) == 0.0
        assert relative_delta(100.0, 110.0) == pytest.approx(0.10)


class TestRegressionEval:
    def test_regressed_metric_fails_the_eval(self, warehouse):
        report = run_regression_eval(
            warehouse, baseline="good", candidate="bad",
            thresholds=[Threshold("global_energy_j", 0.05)],
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.scenario == "fleet-1k"
        assert failure.delta_rel == pytest.approx(0.5)
        assert "FAILED" in report.format()

    def test_within_threshold_passes(self, warehouse):
        report = run_regression_eval(
            warehouse, baseline="good", candidate="bad",
            thresholds=[Threshold("final_accuracy", 0.01, higher_is_better=True)],
        )
        assert report.ok
        assert len(report.comparisons) == 2
        assert "eval OK" in report.format()

    def test_presetless_scenarios_get_composed_names(self, warehouse):
        report = run_regression_eval(
            warehouse, baseline="good", candidate="bad",
            thresholds=[Threshold("final_accuracy", 0.01, higher_is_better=True)],
        )
        assert {c.scenario for c in report.comparisons} == {
            "fleet-1k", "cnn-mnist/S3/N200"
        }

    def test_missing_scenario_fails_the_eval(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows(
            "runs",
            [
                make_run_row(label="base", preset="fleet-1k", spec_hash="h0"),
                make_run_row(label="base", preset="churn-heavy", spec_hash="h1"),
                make_run_row(label="cand", preset="fleet-1k", spec_hash="h0"),
            ],
        )
        report = run_regression_eval(warehouse, baseline="base", candidate="cand")
        assert not report.ok
        assert report.missing == [("churn-heavy", "autofl")]
        assert "MISSING" in report.format()

    def test_suite_restricts_and_validates(self, warehouse):
        report = run_regression_eval(
            warehouse, baseline="good", candidate="bad", suite=["fleet-1k"],
            thresholds=[Threshold("final_accuracy", 0.01, higher_is_better=True)],
        )
        assert {c.scenario for c in report.comparisons} == {"fleet-1k"}
        with pytest.raises(AnalyticsError, match="no baseline rows"):
            run_regression_eval(warehouse, baseline="good", candidate="bad",
                                suite=["fleet-10k"])

    def test_unknown_label_raises_with_known_labels(self, warehouse):
        with pytest.raises(AnalyticsError, match="ingested labels"):
            run_regression_eval(warehouse, baseline="nonexistent", candidate="bad")

    def test_nan_metrics_are_skipped_not_compared(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows(
            "runs",
            [
                make_run_row(label="base", total_straggler_drops=float("nan")),
                make_run_row(label="cand", total_straggler_drops=float("nan")),
            ],
        )
        report = run_regression_eval(
            warehouse, baseline="base", candidate="cand",
            thresholds=[Threshold("total_straggler_drops", 0.05)],
        )
        assert report.ok and report.comparisons == []

    def test_no_thresholds_raises(self, warehouse):
        with pytest.raises(AnalyticsError, match="at least one threshold"):
            run_regression_eval(warehouse, baseline="good", thresholds=[])

    def test_to_dict_round_trips_to_json(self, warehouse):
        import json

        report = run_regression_eval(
            warehouse, baseline="good", candidate="bad",
            thresholds=[Threshold("global_energy_j", 0.05)],
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "regression-eval-report"
        assert payload["ok"] is False
        assert payload["comparisons"][0]["metric"] == "global_energy_j"


class TestComparisonReport:
    def test_energy_and_time_normalise_to_baseline_policy(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows(
            "runs",
            [
                make_run_row(policy="fedavg-random", spec_hash="h0",
                             global_energy_j=1000.0, total_time_s=100.0),
                make_run_row(policy="autofl", spec_hash="h1",
                             global_energy_j=800.0, total_time_s=50.0),
            ],
        )
        headers, rows = build_comparison_report(warehouse)
        assert "energy vs baseline" in headers
        by_policy = {row[1]: row for row in rows}
        assert by_policy["autofl"][4] == pytest.approx(0.8)
        assert by_policy["autofl"][5] == pytest.approx(0.5)
        assert by_policy["fedavg-random"][4] == pytest.approx(1.0)

    def test_missing_baseline_policy_yields_nan_ratios(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows("runs", [make_run_row(policy="autofl")])
        _headers, rows = build_comparison_report(warehouse)
        (row,) = rows
        assert np.isnan(row[4]) and np.isnan(row[5])

    def test_empty_filter_raises(self, tmp_path, make_run_row):
        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        warehouse.append_rows("runs", [make_run_row()])
        with pytest.raises(AnalyticsError, match="no ingested runs match"):
            build_comparison_report(warehouse, where={"policy": ["oracle"]})


class TestBenchFloors:
    @staticmethod
    def _bench_warehouse(tmp_path):
        from repro.analytics import Warehouse

        warehouse = Warehouse(tmp_path / "bench-wh", backend="numpy")
        for timestamp, rounds_per_s, replication_speedup in (
            ("2026-01-01T00:00:00+0000", 4000.0, 6.0),
            ("2026-02-01T00:00:00+0000", 3000.0, 5.0),
        ):
            warehouse.ingest_bench_record(
                {
                    "benchmark": "roundengine",
                    "timestamp": timestamp,
                    "seed": 0,
                    "results": [
                        {
                            "num_devices": 10_000,
                            "num_participants": 100,
                            "scalar_rounds_per_s": 60.0,
                            "batch_rounds_per_s": rounds_per_s,
                            "speedup": rounds_per_s / 60.0,
                        }
                    ],
                    "replication": {
                        "num_devices": 1000,
                        "num_participants": 100,
                        "replicates": 8,
                        "rounds": 40,
                        "serial_wall_s": 1.0,
                        "replicated_wall_s": 1.0 / replication_speedup,
                        "speedup": replication_speedup,
                    },
                }
            )
        return warehouse

    def test_parse_bench_floor(self):
        floor = parse_bench_floor("batch-rounds-per-s@10000=1500")
        assert floor == BenchFloor("batch_rounds_per_s", "10000", 1500.0)
        assert floor.benchmark == "roundengine"
        assert floor.num_devices == 10000.0
        replication = parse_bench_floor("speedup@replication=4")
        assert replication.benchmark == "roundengine-replication"
        assert replication.num_devices is None

    def test_malformed_floor_raises(self):
        for text in ("batch_rounds_per_s=5", "x@10000", "x@ten=5", "x@10=abc"):
            with pytest.raises(AnalyticsError):
                parse_bench_floor(text)

    def test_latest_row_scored_against_floor(self, tmp_path):
        warehouse = self._bench_warehouse(tmp_path)
        report = run_bench_floor_eval(
            warehouse, [parse_bench_floor("batch_rounds_per_s@10000=2500")]
        )
        # The February ingest (3000 r/s) is the scored measurement, not January's 4000.
        assert report.ok
        assert report.checks[0].measured == 3000.0
        failing = run_bench_floor_eval(
            warehouse, [parse_bench_floor("batch_rounds_per_s@10000=3500")]
        )
        assert not failing.ok

    def test_replication_floor_reads_the_replication_row(self, tmp_path):
        warehouse = self._bench_warehouse(tmp_path)
        report = run_bench_floor_eval(
            warehouse, [parse_bench_floor("speedup@replication=4.5")]
        )
        assert report.ok
        assert report.checks[0].measured == 5.0

    def test_unmatched_selector_raises(self, tmp_path):
        warehouse = self._bench_warehouse(tmp_path)
        with pytest.raises(AnalyticsError, match="no ingested bench rows"):
            run_bench_floor_eval(
                warehouse, [parse_bench_floor("batch_rounds_per_s@999=1")]
            )
        with pytest.raises(AnalyticsError, match="unknown bench metric"):
            run_bench_floor_eval(warehouse, [parse_bench_floor("nope@10000=1")])

    def test_no_floors_raises(self, tmp_path):
        warehouse = self._bench_warehouse(tmp_path)
        with pytest.raises(AnalyticsError):
            run_bench_floor_eval(warehouse, [])

    def test_report_round_trips_to_json(self, tmp_path):
        import json

        warehouse = self._bench_warehouse(tmp_path)
        report = run_bench_floor_eval(
            warehouse, [parse_bench_floor("batch_rounds_per_s@10000=2500")]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "bench-floor-report"
        assert payload["ok"] is True
        assert payload["checks"][0]["measurement"] == "batch_rounds_per_s@10000"
        assert report.format().startswith("measurement")
