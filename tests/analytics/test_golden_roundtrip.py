"""Warehouse correctness against the committed golden presets.

The committed ``goldens/*.jsonl`` fixtures are bit-exact snapshots of deterministic
trajectories, so they double as ground truth for the warehouse: every query
aggregation over an ingested golden must equal the same aggregation computed
directly from the :class:`~repro.sim.results.SimulationResult` round records — on
both columnar backends, with exact ``==`` (all paths are float64 ops over the same
JSON-round-tripped doubles, so no tolerance is needed).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.analytics import Warehouse, run_query
from repro.validation.golden import GOLDEN_PRESETS, golden_spec, run_trajectory

GOLDEN_DIR = Path(__file__).parents[2] / "goldens"

#: The per-round metrics the paper's figures aggregate, with every aggregation.
METRICS = (
    "round_time_s",
    "participant_energy_j",
    "global_energy_j",
    "accuracy",
    "num_dropped",
    "num_failed",
)
AGGS = ("mean", "p50", "p95", "sum", "min", "max", "count")


def _direct(values: np.ndarray, agg: str) -> float:
    """The reference aggregation, computed straight from trajectory records."""
    if agg == "count":
        return float(values.size)
    if agg == "mean":
        return float(np.mean(values))
    if agg == "p50":
        return float(np.percentile(values, 50))
    if agg == "p95":
        return float(np.percentile(values, 95))
    if agg == "sum":
        return float(np.sum(values))
    if agg == "min":
        return float(np.min(values))
    return float(np.max(values))


def _record_values(result, metric: str) -> np.ndarray:
    extract = {
        "round_time_s": lambda r: r.round_time_s,
        "participant_energy_j": lambda r: r.participant_energy_j,
        "global_energy_j": lambda r: r.global_energy_j,
        "accuracy": lambda r: r.accuracy,
        "num_dropped": lambda r: float(len(r.dropped_ids)),
        "num_failed": lambda r: float(len(r.failed_ids)),
    }[metric]
    return np.array([extract(record) for record in result.records], dtype=np.float64)


@pytest.fixture(scope="module")
def fresh_results() -> dict:
    """One fresh deterministic trajectory per committed golden preset."""
    return {preset: run_trajectory(golden_spec(preset)) for preset in GOLDEN_PRESETS}


@pytest.fixture
def golden_warehouse(tmp_path, backend) -> Warehouse:
    warehouse = Warehouse(tmp_path / "wh", backend=backend)
    assert warehouse.ingest_goldens(GOLDEN_DIR) > 0
    return warehouse


class TestGoldenRoundtrip:
    def test_every_aggregation_is_exact(self, golden_warehouse, fresh_results):
        result = run_query(
            golden_warehouse, "rounds", group_by=("preset",), metrics=METRICS, aggs=AGGS
        )
        by_preset = {row[0]: row[1:] for row in result.rows}
        assert set(by_preset) == set(GOLDEN_PRESETS)
        for preset, fresh in fresh_results.items():
            cells = by_preset[preset]
            position = 0
            for metric in METRICS:
                values = _record_values(fresh, metric)
                for agg in AGGS:
                    expected = _direct(values, agg)
                    actual = cells[position]
                    assert actual == expected, (
                        f"{preset}.{metric}:{agg}: warehouse={actual!r} "
                        f"direct={expected!r}"
                    )
                    position += 1

    def test_filtered_single_preset_query_is_exact(self, golden_warehouse, fresh_results):
        preset = GOLDEN_PRESETS[0]
        result = run_query(
            golden_warehouse,
            "rounds",
            where={"preset": [preset]},
            group_by=(),
            metrics=("global_energy_j",),
            aggs=("sum",),
        )
        ((total,),) = result.rows
        assert total == float(
            np.sum(_record_values(fresh_results[preset], "global_energy_j"))
        )

    def test_golden_ingest_equals_fresh_run_ingest(self, tmp_path, backend, fresh_results):
        """A golden ingest and a fresh-run ingest of the same spec produce identical
        per-round columns (the golden files really are snapshots of the records)."""
        preset = "flaky-fleet"
        from_golden = Warehouse(tmp_path / "golden", backend=backend)
        from_golden.ingest_goldens(GOLDEN_DIR, names=[preset], label="x")
        from_run = Warehouse(tmp_path / "fresh", backend=backend)
        from_run.ingest_result(
            fresh_results[preset],
            golden_spec(preset),
            label="x",
            source="golden",
            preset=preset,
        )
        golden_columns = from_golden.table("rounds")
        run_columns = from_run.table("rounds")
        for name in golden_columns:
            golden_col, run_col = golden_columns[name], run_columns[name]
            if golden_col.dtype.kind == "U":
                assert list(golden_col) == list(run_col), name
            else:
                np.testing.assert_array_equal(golden_col, run_col, err_msg=name)

    def test_runs_summary_rows_match_trajectory_totals(self, golden_warehouse, fresh_results):
        result = run_query(
            golden_warehouse,
            "runs",
            group_by=("preset",),
            metrics=("total_time_s", "final_accuracy", "global_energy_j"),
            aggs=("mean",),
        )
        for preset, time_s, accuracy, energy in result.rows:
            fresh = fresh_results[preset]
            assert time_s == float(sum(r.round_time_s for r in fresh.records))
            assert accuracy == fresh.final_accuracy
            assert energy == float(sum(r.global_energy_j for r in fresh.records))
