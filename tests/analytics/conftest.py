"""Shared fixtures for the analytics (results warehouse) tests."""

from __future__ import annotations

import pytest

from repro.analytics import have_pyarrow
from repro.experiments.spec import ExperimentSpec
from repro.sim.scenarios import ScenarioSpec
from repro.validation.golden import run_trajectory

#: Both columnar backends; the Parquet leg only runs where pyarrow is installed.
BACKENDS_UNDER_TEST = (
    "numpy",
    pytest.param(
        "parquet",
        marks=pytest.mark.skipif(not have_pyarrow(), reason="pyarrow not installed"),
    ),
)


@pytest.fixture(params=BACKENDS_UNDER_TEST)
def backend(request) -> str:
    return request.param


@pytest.fixture
def small_spec() -> ExperimentSpec:
    """A fast single-seed spec whose trajectory feeds ingest tests."""
    return ExperimentSpec(
        scenario=ScenarioSpec(
            workload="cnn-mnist", setting="S4", num_devices=30, max_rounds=6, seed=3
        ),
        policy="fedavg-random",
        n_seeds=1,
        stop_at_convergence=False,
    ).validate()


@pytest.fixture(scope="session")
def _session_result_cache() -> dict:
    return {}


@pytest.fixture
def small_result(small_spec, _session_result_cache):
    """The (deterministic) trajectory of ``small_spec``, computed once per session."""
    key = small_spec.spec_hash()
    if key not in _session_result_cache:
        _session_result_cache[key] = run_trajectory(small_spec)
    return _session_result_cache[key]


@pytest.fixture
def make_run_row():
    """Factory fixture: a synthetic, fully-populated ``runs`` row for query/eval tests."""
    return _make_run_row


def _make_run_row(**overrides) -> dict:
    row = {
        "label": "baseline",
        "source": "store",
        "spec_hash": "hash-0",
        "spec_schema": 3.0,
        "preset": "fleet-1k",
        "policy": "autofl",
        "workload": "cnn-mnist",
        "setting": "S3",
        "interference": "none",
        "network": "stable",
        "data_distribution": "iid",
        "availability": "always-on",
        "num_devices": 1000.0,
        "seed": 0.0,
        "converged": 1.0,
        "rounds_executed": 20.0,
        "convergence_round": 18.0,
        "convergence_time_s": 90.0,
        "total_time_s": 100.0,
        "final_accuracy": 0.8,
        "participant_energy_j": 1000.0,
        "global_energy_j": 1100.0,
        "total_straggler_drops": 2.0,
        "total_fault_failures": 1.0,
    }
    row.update(overrides)
    return row
