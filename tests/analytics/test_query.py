"""Tests for the vectorised filter/group-by/aggregate query layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import Warehouse, filter_mask, parse_where, run_query
from repro.exceptions import AnalyticsError



@pytest.fixture
def warehouse(tmp_path, make_run_row):
    """A warehouse with a small hand-built ``runs`` table of known values."""
    warehouse = Warehouse(tmp_path / "wh", backend="numpy")
    warehouse.append_rows(
        "runs",
        [
            make_run_row(spec_hash="h0", policy="autofl", seed=0.0, total_time_s=10.0,
                         final_accuracy=0.80),
            make_run_row(spec_hash="h0", policy="autofl", seed=1.0, total_time_s=30.0,
                         final_accuracy=0.90),
            make_run_row(spec_hash="h1", policy="fedavg-random", seed=0.0,
                         total_time_s=50.0, final_accuracy=0.70),
            make_run_row(spec_hash="h2", policy="power", seed=0.0, total_time_s=70.0,
                         final_accuracy=float("nan")),
        ],
    )
    return warehouse


class TestParseWhere:
    def test_values_split_on_commas(self):
        assert parse_where(["policy=autofl,power", "seed=0"]) == {
            "policy": ("autofl", "power"),
            "seed": ("0",),
        }

    def test_dashes_normalise_to_underscores(self):
        assert "num_devices" in parse_where(["num-devices=100"])

    def test_malformed_term_raises(self):
        with pytest.raises(AnalyticsError, match="invalid filter"):
            parse_where(["policy"])

    def test_duplicate_column_raises(self):
        with pytest.raises(AnalyticsError, match="given twice"):
            parse_where(["policy=a", "policy=b"])


class TestFilterMask:
    def test_string_and_numeric_predicates_and_together(self, warehouse):
        columns = warehouse.table("runs")
        mask = filter_mask("runs", columns, {"policy": ["autofl"], "seed": ["1"]})
        assert int(mask.sum()) == 1

    def test_numeric_column_rejects_non_numeric_value(self, warehouse):
        with pytest.raises(AnalyticsError, match="is numeric"):
            filter_mask("runs", warehouse.table("runs"), {"seed": ["zero"]})

    def test_unknown_column_raises(self, warehouse):
        with pytest.raises(AnalyticsError, match="unknown filter column"):
            filter_mask("runs", warehouse.table("runs"), {"policee": ["x"]})


class TestRunQuery:
    def test_mean_per_policy_matches_numpy(self, warehouse):
        result = run_query(
            warehouse, "runs", group_by=("policy",), metrics=("total_time_s",),
            aggs=("mean",),
        )
        values = dict(result.rows)
        assert values["autofl"] == np.mean([10.0, 30.0])
        assert values["fedavg-random"] == 50.0
        assert result.headers == ("policy", "total_time_s:mean")
        assert (result.matched_rows, result.total_rows) == (4, 4)

    def test_percentiles_and_sum(self, warehouse):
        result = run_query(
            warehouse, "runs", where={"policy": ["autofl"]}, group_by=(),
            metrics=("total_time_s",), aggs=("p50", "p95", "sum"),
        )
        (row,) = result.rows
        assert row == (
            np.percentile([10.0, 30.0], 50),
            np.percentile([10.0, 30.0], 95),
            40.0,
        )

    def test_nan_cells_are_excluded(self, warehouse):
        result = run_query(
            warehouse, "runs", group_by=(), metrics=("final_accuracy",),
            aggs=("mean", "count"),
        )
        (row,) = result.rows
        assert row[0] == np.mean([0.80, 0.90, 0.70])  # NaN row excluded
        assert row[1] == 3.0  # count is of finite cells only

    def test_all_nan_group_aggregates_to_nan(self, warehouse):
        result = run_query(
            warehouse, "runs", where={"policy": ["power"]}, group_by=(),
            metrics=("final_accuracy",), aggs=("mean", "count"),
        )
        (row,) = result.rows
        assert np.isnan(row[0]) and row[1] == 0.0

    def test_empty_filter_yields_no_groups(self, warehouse):
        result = run_query(warehouse, "runs", where={"policy": ["oracle"]})
        assert result.rows == ()
        assert result.matched_rows == 0

    def test_defaults_group_by_label_preset_policy(self, warehouse):
        result = run_query(warehouse, "runs")
        assert result.group_by == ("label", "preset", "policy")
        assert len(result.rows) == 3

    def test_unknown_metric_and_agg_raise(self, warehouse):
        with pytest.raises(AnalyticsError, match="unknown metric column"):
            run_query(warehouse, "runs", metrics=("velocity",))
        with pytest.raises(AnalyticsError, match="unknown aggregation"):
            run_query(warehouse, "runs", aggs=("stdev",))

    def test_string_metric_rejected(self, warehouse):
        with pytest.raises(AnalyticsError, match="is not numeric"):
            run_query(warehouse, "runs", metrics=("policy",))

    def test_to_dict_is_json_ready(self, warehouse):
        import json

        payload = run_query(
            warehouse, "runs", group_by=("policy",), metrics=("total_time_s",)
        ).to_dict()
        assert payload["groups"][0]["policy"] == "autofl"
        json.dumps(payload)  # must not raise
