"""Numerical gradient checks for every trainable layer.

These verify that the analytic backward passes match finite-difference gradients of a
scalar loss, which is the strongest correctness guarantee for the from-scratch layers.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    GlobalAvgPool2D,
    LSTM,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)

EPSILON = 1e-5
TOLERANCE = 1e-4


def _loss_weights(layer, inputs, weights):
    """Scalar loss (sum of outputs) as a function of a parameter array."""
    original = layer.params[weights].copy()

    def evaluate(values):
        layer.params[weights] = values
        output = layer.forward(inputs, training=True)
        layer.params[weights] = original
        return output.sum()

    return evaluate


def _numerical_grad(function, values):
    grad = np.zeros_like(values)
    flat = values.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + EPSILON
        plus = function(values)
        flat[index] = original - EPSILON
        minus = function(values)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * EPSILON)
    return grad


def _check_parameter_gradients(layer, inputs):
    outputs = layer.forward(inputs, training=True)
    layer.backward(np.ones_like(outputs))
    for name, values in layer.params.items():
        numerical = _numerical_grad(_loss_weights(layer, inputs, name), values.copy())
        analytic = layer.grads[name]
        assert np.allclose(analytic, numerical, atol=TOLERANCE), f"gradient mismatch for {name}"


def _check_input_gradients(layer, inputs):
    outputs = layer.forward(inputs, training=True)
    analytic = layer.backward(np.ones_like(outputs))

    def evaluate(values):
        return layer.forward(values, training=True).sum()

    numerical = _numerical_grad(evaluate, inputs.copy())
    assert np.allclose(analytic, numerical, atol=TOLERANCE)


@pytest.fixture
def rng_np():
    return np.random.default_rng(0)


class TestDenseGradients:
    def test_parameter_gradients(self, rng_np):
        layer = Dense(5, 3, rng_np)
        _check_parameter_gradients(layer, rng_np.normal(size=(4, 5)))

    def test_input_gradients(self, rng_np):
        layer = Dense(5, 3, rng_np)
        _check_input_gradients(layer, rng_np.normal(size=(4, 5)))


class TestConvGradients:
    def test_parameter_gradients(self, rng_np):
        layer = Conv2D(2, 3, kernel_size=3, rng=rng_np, padding=1)
        _check_parameter_gradients(layer, rng_np.normal(size=(2, 2, 6, 6)))

    def test_input_gradients(self, rng_np):
        layer = Conv2D(2, 3, kernel_size=3, rng=rng_np, padding=1)
        _check_input_gradients(layer, rng_np.normal(size=(2, 2, 6, 6)))

    def test_strided_conv_gradients(self, rng_np):
        layer = Conv2D(2, 2, kernel_size=3, rng=rng_np, stride=2, padding=1)
        _check_parameter_gradients(layer, rng_np.normal(size=(2, 2, 8, 8)))


class TestDepthwiseConvGradients:
    def test_parameter_gradients(self, rng_np):
        layer = DepthwiseConv2D(3, kernel_size=3, rng=rng_np, padding=1)
        _check_parameter_gradients(layer, rng_np.normal(size=(2, 3, 5, 5)))

    def test_input_gradients(self, rng_np):
        layer = DepthwiseConv2D(3, kernel_size=3, rng=rng_np, padding=1)
        _check_input_gradients(layer, rng_np.normal(size=(2, 3, 5, 5)))


class TestLstmGradients:
    def test_parameter_gradients(self, rng_np):
        layer = LSTM(4, 3, rng_np)
        _check_parameter_gradients(layer, rng_np.normal(size=(3, 5, 4)))

    def test_input_gradients(self, rng_np):
        layer = LSTM(4, 3, rng_np)
        _check_input_gradients(layer, rng_np.normal(size=(3, 5, 4)))


class TestEmbeddingGradients:
    def test_parameter_gradients(self, rng_np):
        layer = Embedding(7, 3, rng_np)
        tokens = rng_np.integers(0, 7, size=(4, 5))
        outputs = layer.forward(tokens, training=True)
        layer.backward(np.ones_like(outputs))
        numerical = _numerical_grad(
            _loss_weights(layer, tokens, "weight"), layer.params["weight"].copy()
        )
        assert np.allclose(layer.grads["weight"], numerical, atol=TOLERANCE)


class TestActivationAndPoolingGradients:
    @pytest.mark.parametrize("layer_cls", [ReLU, Sigmoid, Tanh])
    def test_activation_input_gradients(self, rng_np, layer_cls):
        layer = layer_cls()
        _check_input_gradients(layer, rng_np.normal(size=(3, 7)) + 0.1)

    def test_maxpool_input_gradients(self, rng_np):
        layer = MaxPool2D(2)
        _check_input_gradients(layer, rng_np.normal(size=(2, 2, 4, 4)))

    def test_global_avg_pool_input_gradients(self, rng_np):
        layer = GlobalAvgPool2D()
        _check_input_gradients(layer, rng_np.normal(size=(2, 3, 4, 4)))
