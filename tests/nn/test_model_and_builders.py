"""Tests for the Sequential container and the three workload model builders."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.models import build_cnn_mnist, build_lstm_shakespeare, build_mobilenet_lite
from repro.nn.optimizers import SGD


@pytest.fixture
def rng_np():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_model(rng_np):
    return Sequential(
        [Dense(6, 8, rng_np), ReLU(), Dense(8, 3, rng_np)], input_shape=(6,), name="tiny"
    )


class TestSequential:
    def test_forward_shapes(self, tiny_model, rng_np):
        out = tiny_model.forward(rng_np.normal(size=(5, 6)))
        assert out.shape == (5, 3)
        assert tiny_model.output_shape() == (3,)

    def test_weight_roundtrip(self, tiny_model):
        weights = tiny_model.get_weights()
        weights[0]["weight"] = weights[0]["weight"] + 1.0
        tiny_model.set_weights(weights)
        assert np.allclose(tiny_model.get_weights()[0]["weight"], weights[0]["weight"])

    def test_set_weights_wrong_length(self, tiny_model):
        with pytest.raises(ModelError):
            tiny_model.set_weights([])

    def test_num_params_and_size(self, tiny_model):
        expected = (6 * 8 + 8) + (8 * 3 + 3)
        assert tiny_model.num_params == expected
        assert tiny_model.model_size_mb == pytest.approx(expected * 4 / 1e6)

    def test_layer_counts(self, tiny_model):
        counts = tiny_model.layer_counts()
        assert counts["fc"] == 2
        assert counts["conv"] == 0

    def test_per_sample_cost_positive(self, tiny_model):
        cost = tiny_model.per_sample_cost()
        assert cost.flops > 0 and cost.memory_bytes > 0

    def test_summary_mentions_layers(self, tiny_model):
        summary = tiny_model.summary()
        assert "Dense" in summary and "Total params" in summary

    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            Sequential([], input_shape=(3,))

    def test_training_reduces_loss(self, tiny_model, rng_np):
        """A tiny supervised problem must be learnable end to end."""
        features = rng_np.normal(size=(64, 6))
        labels = (features[:, 0] > 0).astype(int) + (features[:, 1] > 0).astype(int)
        loss = SoftmaxCrossEntropy()
        optimizer = SGD(learning_rate=0.2)
        first_loss = None
        for _ in range(60):
            logits = tiny_model.forward(features)
            value = loss.forward(logits, labels)
            if first_loss is None:
                first_loss = value
            tiny_model.backward(loss.backward())
            optimizer.step(tiny_model)
            tiny_model.zero_grads()
        assert value < 0.5 * first_loss


class TestWorkloadBuilders:
    def test_cnn_mnist_structure(self):
        model = build_cnn_mnist()
        counts = model.layer_counts()
        assert counts["conv"] == 2
        assert counts["fc"] == 2
        out = model.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_lstm_shakespeare_structure(self):
        model = build_lstm_shakespeare(vocab_size=30, sequence_length=12)
        counts = model.layer_counts()
        assert counts["rc"] == 1
        assert counts["fc"] == 1
        tokens = np.zeros((3, 12), dtype=int)
        assert model.forward(tokens).shape == (3, 30)

    def test_mobilenet_structure(self):
        model = build_mobilenet_lite(num_classes=12)
        counts = model.layer_counts()
        assert counts["conv"] >= 6
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 12)

    def test_builders_are_seed_deterministic(self):
        first = build_cnn_mnist(seed=5)
        second = build_cnn_mnist(seed=5)
        for a, b in zip(first.get_weights(), second.get_weights()):
            for name in a:
                assert np.allclose(a[name], b[name])

    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            (build_cnn_mnist, {"image_size": 28}),
            (build_lstm_shakespeare, {}),
            (build_mobilenet_lite, {}),
        ],
    )
    def test_cost_accounting_positive(self, builder, kwargs):
        model = builder(**kwargs)
        cost = model.per_sample_cost()
        assert cost.flops > 1e5
        assert cost.memory_bytes > 1e4
