"""Shape, parameter and error-handling tests for the layer library."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2D,
    LSTM,
    MaxPool2D,
    ReLU,
)
from repro.nn.layers.base import LayerCost


@pytest.fixture
def rng_np():
    return np.random.default_rng(0)


class TestDense:
    def test_shapes_and_param_count(self, rng_np):
        layer = Dense(8, 4, rng_np)
        assert layer.num_params == 8 * 4 + 4
        out = layer.forward(np.zeros((3, 8)))
        assert out.shape == (3, 4)
        assert layer.output_shape((8,)) == (4,)
        assert layer.kind == "fc"

    def test_wrong_input_shape(self, rng_np):
        layer = Dense(8, 4, rng_np)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((3, 5)))

    def test_backward_before_forward(self, rng_np):
        with pytest.raises(ModelError):
            Dense(2, 2, rng_np).backward(np.zeros((1, 2)))

    def test_set_weights_validates_shapes(self, rng_np):
        layer = Dense(3, 2, rng_np)
        with pytest.raises(ModelError):
            layer.set_weights({"weight": np.zeros((2, 3))})
        with pytest.raises(ModelError):
            layer.set_weights({"unknown": np.zeros((3, 2))})

    def test_cost_positive(self, rng_np):
        cost = Dense(3, 2, rng_np).cost((3,))
        assert isinstance(cost, LayerCost)
        assert cost.flops > 0 and cost.memory_bytes > 0


class TestConv2D:
    def test_output_shape_with_padding(self, rng_np):
        layer = Conv2D(3, 8, kernel_size=3, rng=rng_np, padding=1)
        out = layer.forward(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)
        assert layer.output_shape((3, 16, 16)) == (8, 16, 16)
        assert layer.kind == "conv"

    def test_output_shape_with_stride(self, rng_np):
        layer = Conv2D(3, 8, kernel_size=3, rng=rng_np, stride=2, padding=1)
        assert layer.output_shape((3, 16, 16)) == (8, 8, 8)

    def test_param_count(self, rng_np):
        layer = Conv2D(3, 8, kernel_size=3, rng=rng_np)
        assert layer.num_params == 8 * 3 * 9 + 8

    def test_wrong_channels_rejected(self, rng_np):
        layer = Conv2D(3, 8, kernel_size=3, rng=rng_np)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((1, 4, 8, 8)))

    def test_invalid_hyperparameters(self, rng_np):
        with pytest.raises(ModelError):
            Conv2D(0, 8, 3, rng_np)


class TestDepthwiseConv2D:
    def test_preserves_channels(self, rng_np):
        layer = DepthwiseConv2D(6, kernel_size=3, rng=rng_np, padding=1)
        out = layer.forward(np.zeros((2, 6, 10, 10)))
        assert out.shape == (2, 6, 10, 10)
        assert layer.num_params == 6 * 9 + 6

    def test_cheaper_than_full_conv(self, rng_np):
        depthwise = DepthwiseConv2D(16, kernel_size=3, rng=rng_np, padding=1)
        full = Conv2D(16, 16, kernel_size=3, rng=rng_np, padding=1)
        assert depthwise.cost((16, 8, 8)).flops < full.cost((16, 8, 8)).flops


class TestPooling:
    def test_maxpool_values(self):
        layer = MaxPool2D(2)
        data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(data)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_avgpool_values(self):
        layer = AvgPool2D(2)
        data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(data)
        assert out[0, 0, 0, 0] == pytest.approx(2.5)

    def test_global_avg_pool(self):
        layer = GlobalAvgPool2D()
        data = np.ones((2, 3, 4, 4))
        out = layer.forward(data)
        assert out.shape == (2, 3)
        assert np.allclose(out, 1.0)

    def test_non_4d_rejected(self):
        with pytest.raises(ModelError):
            MaxPool2D(2).forward(np.zeros((2, 4)))


class TestActivationsAndMisc:
    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]

    def test_flatten_roundtrip(self, rng_np):
        layer = Flatten()
        data = rng_np.normal(size=(2, 3, 4, 4))
        out = layer.forward(data)
        assert out.shape == (2, 48)
        restored = layer.backward(out)
        assert restored.shape == data.shape
        assert layer.output_shape((3, 4, 4)) == (48,)

    def test_dropout_disabled_at_inference(self):
        layer = Dropout(0.5, seed=0)
        data = np.ones((4, 10))
        assert np.array_equal(layer.forward(data, training=False), data)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.5, seed=0)
        data = np.ones((200, 200))
        out = layer.forward(data, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0)


class TestEmbeddingAndLstm:
    def test_embedding_shapes(self, rng_np):
        layer = Embedding(10, 4, rng_np)
        tokens = np.array([[1, 2, 3], [4, 5, 6]])
        out = layer.forward(tokens)
        assert out.shape == (2, 3, 4)
        assert layer.output_shape((3,)) == (3, 4)

    def test_embedding_out_of_vocab(self, rng_np):
        layer = Embedding(5, 4, rng_np)
        with pytest.raises(ModelError):
            layer.forward(np.array([[7]]))

    def test_lstm_shapes(self, rng_np):
        layer = LSTM(4, 6, rng_np)
        out = layer.forward(rng_np.normal(size=(3, 7, 4)))
        assert out.shape == (3, 6)
        assert layer.output_shape((7, 4)) == (6,)
        assert layer.kind == "rc"

    def test_lstm_param_count(self, rng_np):
        layer = LSTM(4, 6, rng_np)
        assert layer.num_params == (4 * 24) + (6 * 24) + 24

    def test_lstm_forget_bias_initialised_positive(self, rng_np):
        layer = LSTM(4, 6, rng_np)
        assert np.all(layer.params["bias"][6:12] == 1.0)

    def test_lstm_wrong_input_dim(self, rng_np):
        layer = LSTM(4, 6, rng_np)
        with pytest.raises(ModelError):
            layer.forward(np.zeros((2, 5, 3)))
