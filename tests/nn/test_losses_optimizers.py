"""Tests for losses and optimizers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optimizers import ProximalSGD, SGD


@pytest.fixture
def rng_np():
    return np.random.default_rng(0)


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self, rng_np):
        probabilities = SoftmaxCrossEntropy.softmax(rng_np.normal(size=(5, 7)))
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_loss_is_log_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10))
        assert loss.forward(logits, np.zeros(4, dtype=int)) == pytest.approx(np.log(10))

    def test_gradient_matches_numerical(self, rng_np):
        loss = SoftmaxCrossEntropy()
        logits = rng_np.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        loss.forward(logits, labels)
        analytic = loss.backward()
        numerical = np.zeros_like(logits)
        eps = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                perturbed = logits.copy()
                perturbed[i, j] += eps
                plus = SoftmaxCrossEntropy().forward(perturbed, labels)
                perturbed[i, j] -= 2 * eps
                minus = SoftmaxCrossEntropy().forward(perturbed, labels)
                numerical[i, j] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numerical, atol=1e-5)

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        assert SoftmaxCrossEntropy.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_backward_before_forward(self):
        with pytest.raises(ModelError):
            SoftmaxCrossEntropy().backward()

    def test_misaligned_labels(self):
        with pytest.raises(ModelError):
            SoftmaxCrossEntropy().forward(np.zeros((3, 2)), np.zeros(2, dtype=int))


def _single_layer_model(rng_np):
    return Sequential([Dense(4, 2, rng_np)], input_shape=(4,))


class TestSGD:
    def test_step_moves_against_gradient(self, rng_np):
        model = _single_layer_model(rng_np)
        layer = model.layers[0]
        before = layer.params["weight"].copy()
        layer.grads["weight"] = np.ones_like(before)
        layer.grads["bias"] = np.zeros_like(layer.params["bias"])
        SGD(learning_rate=0.1).step(model)
        assert np.allclose(layer.params["weight"], before - 0.1)

    def test_momentum_accumulates(self, rng_np):
        model = _single_layer_model(rng_np)
        layer = model.layers[0]
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        layer.grads["weight"] = np.ones_like(layer.params["weight"])
        layer.grads["bias"] = np.zeros_like(layer.params["bias"])
        before = layer.params["weight"].copy()
        optimizer.step(model)
        first_step = before - layer.params["weight"]
        optimizer.step(model)
        second_step = (before - first_step) - layer.params["weight"]
        assert np.all(second_step > first_step)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            SGD(learning_rate=0.0)
        with pytest.raises(ModelError):
            SGD(momentum=1.0)


class TestProximalSGD:
    def test_proximal_term_pulls_toward_reference(self, rng_np):
        model = _single_layer_model(rng_np)
        layer = model.layers[0]
        reference = model.get_weights()
        # Move the weights away from the reference, then step with zero task gradient.
        layer.params["weight"] = layer.params["weight"] + 1.0
        drift_before = np.abs(layer.params["weight"] - reference[0]["weight"]).mean()
        layer.grads["weight"] = np.zeros_like(layer.params["weight"])
        layer.grads["bias"] = np.zeros_like(layer.params["bias"])
        optimizer = ProximalSGD(learning_rate=0.5, mu=0.5)
        optimizer.set_reference(reference)
        optimizer.step(model)
        drift_after = np.abs(layer.params["weight"] - reference[0]["weight"]).mean()
        assert drift_after < drift_before

    def test_zero_mu_equals_plain_sgd(self, rng_np):
        model_a = _single_layer_model(rng_np)
        model_b = Sequential(
            [Dense(4, 2, np.random.default_rng(0))], input_shape=(4,)
        )
        model_b.set_weights(model_a.get_weights())
        for model in (model_a, model_b):
            model.layers[0].grads["weight"] = np.ones_like(model.layers[0].params["weight"])
            model.layers[0].grads["bias"] = np.zeros(2)
        prox = ProximalSGD(learning_rate=0.1, mu=0.0)
        prox.set_reference(model_a.get_weights())
        prox.step(model_a)
        SGD(learning_rate=0.1).step(model_b)
        assert np.allclose(model_a.layers[0].params["weight"], model_b.layers[0].params["weight"])

    def test_invalid_mu(self):
        with pytest.raises(ModelError):
            ProximalSGD(mu=-0.1)

    def test_mismatched_reference_rejected(self, rng_np):
        model = _single_layer_model(rng_np)
        optimizer = ProximalSGD(mu=0.1)
        optimizer.set_reference([])
        model.layers[0].grads["weight"] = np.zeros((4, 2))
        with pytest.raises(ModelError):
            optimizer.step(model)
