"""Tests for the systems-level workload profiles."""

import pytest

from repro.exceptions import ConfigurationError
from repro.nn.models import build_cnn_mnist
from repro.nn.workloads import (
    CNN_MNIST,
    LSTM_SHAKESPEARE,
    MOBILENET_IMAGENET,
    WORKLOAD_PROFILES,
    WorkloadProfile,
    get_workload_profile,
)


class TestPredefinedProfiles:
    def test_registry_contains_three_paper_workloads(self):
        assert set(WORKLOAD_PROFILES) == {
            "cnn-mnist",
            "lstm-shakespeare",
            "mobilenet-imagenet",
        }

    def test_layer_counts_match_architectures(self):
        assert CNN_MNIST.num_conv_layers == 2 and CNN_MNIST.num_rc_layers == 0
        assert LSTM_SHAKESPEARE.num_rc_layers == 2
        assert MOBILENET_IMAGENET.num_conv_layers > 20

    def test_lstm_is_most_memory_bound(self):
        """Paper Section 3.1: RC layers make LSTM-Shakespeare memory intensive."""
        assert LSTM_SHAKESPEARE.compute_intensity < CNN_MNIST.compute_intensity
        assert LSTM_SHAKESPEARE.compute_intensity < MOBILENET_IMAGENET.compute_intensity

    def test_mobilenet_is_heaviest_per_sample(self):
        assert MOBILENET_IMAGENET.flops_per_sample > CNN_MNIST.flops_per_sample
        assert MOBILENET_IMAGENET.model_size_mb > CNN_MNIST.model_size_mb

    @pytest.mark.parametrize(
        "alias, expected",
        [
            ("cnn", "cnn-mnist"),
            ("CNN_MNIST", "cnn-mnist"),
            ("shakespeare", "lstm-shakespeare"),
            ("mobilenet", "mobilenet-imagenet"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert get_workload_profile(alias).name == expected

    def test_profile_passthrough(self):
        assert get_workload_profile(CNN_MNIST) is CNN_MNIST

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            get_workload_profile("resnet50")


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CNN_MNIST.with_overrides(max_accuracy=1.5)
        with pytest.raises(ConfigurationError):
            CNN_MNIST.with_overrides(flops_per_sample=0.0)
        with pytest.raises(ConfigurationError):
            CNN_MNIST.with_overrides(target_accuracy=0.999)

    def test_with_overrides_returns_copy(self):
        modified = CNN_MNIST.with_overrides(samples_per_device=100)
        assert modified.samples_per_device == 100
        assert CNN_MNIST.samples_per_device != 100

    def test_from_model_reflects_structure(self):
        model = build_cnn_mnist()
        profile = WorkloadProfile.from_model(model, name="cnn-small")
        assert profile.num_conv_layers == 2
        assert profile.num_fc_layers == 2
        assert profile.model_size_mb == pytest.approx(model.model_size_mb)
        assert profile.flops_per_sample == pytest.approx(model.per_sample_cost().flops)
