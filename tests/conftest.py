"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GlobalParams, SimulationConfig
from repro.devices.fleet import build_fleet
from repro.devices.specs import GALAXY_S10E, MI8_PRO, MOTO_X_FORCE
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A 20-device configuration with the standard tier proportions."""
    return SimulationConfig.small(num_devices=20, seed=7)


@pytest.fixture
def small_fleet(small_config, rng):
    """A 20-device fleet."""
    return build_fleet(small_config, rng)


@pytest.fixture
def global_params() -> GlobalParams:
    """The S4 global parameters (K = 10), small enough for 20-device fleets."""
    return GlobalParams.from_setting("S4")


@pytest.fixture
def small_scenario() -> ScenarioSpec:
    """A small, fast scenario spec used by simulator and policy tests."""
    return ScenarioSpec(
        workload="cnn-mnist", setting="S4", num_devices=30, max_rounds=40, seed=11
    )


@pytest.fixture
def small_environment(small_scenario):
    """The environment built from the small scenario."""
    return build_environment(small_scenario)


@pytest.fixture
def small_backend(small_environment):
    """A surrogate training backend for the small environment."""
    return build_surrogate_backend(small_environment)


@pytest.fixture
def device_specs():
    """The three tier specs as a dict for parametrised tests."""
    return {"high": MI8_PRO, "mid": GALAXY_S10E, "low": MOTO_X_FORCE}
