"""Tests for the top-level convenience API."""

import pytest

from repro import GlobalParams, SimulationConfig, __version__, build_default_experiment
from repro.api import run_policy_comparison
from repro.sim.runner import FLSimulation


class TestPackageSurface:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_reexports(self):
        assert GlobalParams().batch_size > 0
        assert SimulationConfig().num_devices == 200


class TestBuildDefaultExperiment:
    def test_returns_runnable_simulation(self):
        simulation = build_default_experiment(
            policy="fedavg-random", num_devices=30, rounds=15, seed=1
        )
        assert isinstance(simulation, FLSimulation)
        result = simulation.run()
        assert 1 <= result.num_rounds <= 15
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_policy_and_workload_propagate(self):
        simulation = build_default_experiment(
            policy="performance", workload="lstm-shakespeare", num_devices=30, rounds=5
        )
        assert simulation.policy.name == "performance"
        assert simulation.environment.workload.name == "lstm-shakespeare"

    def test_setting_propagates(self):
        simulation = build_default_experiment(setting="S1", num_devices=30, rounds=5)
        assert simulation.environment.global_params == GlobalParams.from_setting("S1")


class TestRunPolicyComparisonApi:
    def test_rows_cover_requested_policies(self):
        rows = run_policy_comparison(
            policies=("fedavg-random", "performance"),
            num_devices=30,
            rounds=15,
            seed=2,
        )
        assert [row.policy for row in rows] == ["fedavg-random", "performance"]
        baseline = rows[0]
        assert baseline.ppw_global == pytest.approx(1.0)
