"""Tests for the AutoFL state features and discretisation (paper Table 1)."""

import pytest

from repro.config import GlobalParams
from repro.data.profiles import DeviceDataProfile
from repro.devices.device import RoundConditions
from repro.core.state import GlobalState, LocalState, StateEncoder
from repro.nn.workloads import CNN_MNIST, LSTM_SHAKESPEARE, MOBILENET_IMAGENET


@pytest.fixture
def encoder():
    return StateEncoder()


def _profile(class_fraction):
    return DeviceDataProfile(
        device_id=0,
        num_samples=100,
        class_fraction=class_fraction,
        balance_score=class_fraction,
        is_non_iid=class_fraction < 0.9,
    )


class TestGlobalStateEncoding:
    def test_cnn_and_lstm_differ(self, encoder):
        params = GlobalParams.from_setting("S3")
        cnn = encoder.encode_global(CNN_MNIST, params)
        lstm = encoder.encode_global(LSTM_SHAKESPEARE, params)
        assert cnn != lstm
        assert cnn.s_rc == 0 and lstm.s_rc > 0

    def test_mobilenet_has_larger_conv_bin(self, encoder):
        params = GlobalParams.from_setting("S3")
        cnn = encoder.encode_global(CNN_MNIST, params)
        mobilenet = encoder.encode_global(MOBILENET_IMAGENET, params)
        assert mobilenet.s_conv > cnn.s_conv

    def test_global_parameter_bins(self, encoder):
        # Table 1 bins: K = 10 and K = 20 both fall in the "medium" (<50) bin, K = 5 is small.
        k5 = encoder.encode_global(CNN_MNIST, GlobalParams(num_participants=5))
        k10 = encoder.encode_global(CNN_MNIST, GlobalParams.from_setting("S4"))
        k20 = encoder.encode_global(CNN_MNIST, GlobalParams.from_setting("S3"))
        k80 = encoder.encode_global(CNN_MNIST, GlobalParams(num_participants=80))
        assert k5.s_participants < k10.s_participants == k20.s_participants < k80.s_participants
        b32 = encoder.encode_global(CNN_MNIST, GlobalParams.from_setting("S1"))
        b16 = encoder.encode_global(CNN_MNIST, GlobalParams.from_setting("S3"))
        assert b32.s_batch > b16.s_batch

    def test_epoch_bins_follow_table1(self, encoder):
        e10 = encoder.encode_global(CNN_MNIST, GlobalParams(local_epochs=10))
        e5 = encoder.encode_global(CNN_MNIST, GlobalParams(local_epochs=5))
        e3 = encoder.encode_global(CNN_MNIST, GlobalParams(local_epochs=3))
        assert e3.s_epochs == 0 and e5.s_epochs == 1 and e10.s_epochs == 2

    def test_as_tuple_is_hashable_and_stable(self, encoder):
        params = GlobalParams.from_setting("S2")
        state = encoder.encode_global(CNN_MNIST, params)
        assert state.as_tuple() == encoder.encode_global(CNN_MNIST, params).as_tuple()
        assert hash(state.as_tuple())


class TestLocalStateEncoding:
    def test_interference_bins(self, encoder):
        idle = encoder.encode_local(RoundConditions(), _profile(1.0))
        light = encoder.encode_local(RoundConditions(co_cpu_util=0.1), _profile(1.0))
        heavy = encoder.encode_local(RoundConditions(co_cpu_util=0.9), _profile(1.0))
        assert idle.s_co_cpu == 0
        assert light.s_co_cpu == 1
        assert heavy.s_co_cpu == 3

    def test_network_bin_threshold_at_40mbps(self, encoder):
        good = encoder.encode_local(RoundConditions(bandwidth_mbps=80), _profile(1.0))
        bad = encoder.encode_local(RoundConditions(bandwidth_mbps=30), _profile(1.0))
        assert good.s_network == 0
        assert bad.s_network == 1

    def test_data_bins(self, encoder):
        concentrated = encoder.encode_local(RoundConditions(), _profile(0.1))
        partial = encoder.encode_local(RoundConditions(), _profile(0.6))
        full = encoder.encode_local(RoundConditions(), _profile(1.0))
        assert concentrated.s_data == 0
        assert partial.s_data == 1
        assert full.s_data == 2

    def test_memory_bins(self, encoder):
        medium = encoder.encode_local(RoundConditions(co_mem_util=0.5), _profile(1.0))
        assert medium.s_co_mem == 2

    def test_states_are_dataclasses_with_tuples(self):
        state = LocalState(1, 2, 0, 1)
        assert state.as_tuple() == (1, 2, 0, 1)
        global_state = GlobalState(1, 0, 0, 2, 1, 1)
        assert len(global_state.as_tuple()) == 6
