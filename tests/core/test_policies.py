"""Tests for the baseline selection policies and the policy factory."""

import numpy as np
import pytest

from repro.core.selection import (
    CLUSTER_TEMPLATES,
    PerformancePolicy,
    PowerPolicy,
    RandomPolicy,
    StaticClusterPolicy,
    TEMPLATE_REFERENCE_K,
    make_policy,
    scale_template,
)
from repro.core.controller import AutoFLPolicy
from repro.core.oracle import OracleFLPolicy, OracleParticipantPolicy
from repro.devices.specs import DeviceTier
from repro.exceptions import PolicyError
from repro.sim.context import RoundContext


@pytest.fixture
def context(small_environment):
    conditions = small_environment.sample_round_conditions()
    return RoundContext(
        round_index=0, environment=small_environment, conditions=conditions, accuracy=0.1
    )


def _tier_counts(environment, participants):
    counts = {tier: 0 for tier in DeviceTier}
    for device_id in participants:
        counts[environment.fleet.tier_of(device_id)] += 1
    return counts


class TestClusterTemplates:
    def test_table4_templates_sum_to_reference_k(self):
        for name, template in CLUSTER_TEMPLATES.items():
            assert sum(template.values()) == TEMPLATE_REFERENCE_K, name

    def test_c1_and_c7_are_pure_tiers(self):
        assert CLUSTER_TEMPLATES["C1"][DeviceTier.HIGH] == 20
        assert CLUSTER_TEMPLATES["C7"][DeviceTier.LOW] == 20

    def test_scale_template_preserves_total(self):
        for k in (5, 10, 17, 20, 40):
            scaled = scale_template(CLUSTER_TEMPLATES["C3"], k)
            assert sum(scaled.values()) == k

    def test_scale_template_invalid_k(self):
        with pytest.raises(PolicyError):
            scale_template(CLUSTER_TEMPLATES["C3"], 0)


class TestRandomPolicy:
    def test_selects_k_unique_devices(self, context):
        policy = RandomPolicy(rng=np.random.default_rng(0))
        decision = policy.select(context)
        expected = context.environment.global_params.num_participants
        assert len(decision.participants) == expected
        assert len(set(decision.participants)) == expected

    def test_selection_varies_between_rounds(self, context):
        policy = RandomPolicy(rng=np.random.default_rng(0))
        first = policy.select(context).participants
        second = policy.select(context).participants
        assert set(first) != set(second)


class TestStaticClusterPolicies:
    def test_performance_policy_prefers_high_end(self, context):
        decision = PerformancePolicy(rng=np.random.default_rng(0)).select(context)
        counts = _tier_counts(context.environment, decision.participants)
        available_high = len(context.environment.fleet.by_tier(DeviceTier.HIGH))
        assert counts[DeviceTier.HIGH] == min(
            available_high, context.environment.global_params.num_participants
        )

    def test_power_policy_prefers_low_end(self, context):
        decision = PowerPolicy(rng=np.random.default_rng(0)).select(context)
        counts = _tier_counts(context.environment, decision.participants)
        assert counts[DeviceTier.LOW] >= counts[DeviceTier.HIGH]
        assert counts[DeviceTier.LOW] >= counts[DeviceTier.MID]

    def test_named_template_policy(self, context):
        policy = StaticClusterPolicy("C3", rng=np.random.default_rng(0))
        assert policy.name == "cluster-c3"
        decision = policy.select(context)
        assert len(decision.participants) == context.environment.global_params.num_participants

    def test_shortfall_filled_from_other_tiers(self, context):
        # Request far more high-end devices than exist in the small fleet.
        policy = StaticClusterPolicy({DeviceTier.HIGH: 20}, rng=np.random.default_rng(0))
        decision = policy.select(context)
        assert len(decision.participants) == context.environment.global_params.num_participants

    def test_unknown_template_rejected(self):
        with pytest.raises(PolicyError):
            StaticClusterPolicy("C9")


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("fedavg-random", RandomPolicy),
            ("random", RandomPolicy),
            ("power", PowerPolicy),
            ("performance", PerformancePolicy),
            ("cluster-c4", StaticClusterPolicy),
            ("oparticipant", OracleParticipantPolicy),
            ("ofl", OracleFLPolicy),
            ("autofl", AutoFLPolicy),
        ],
    )
    def test_factory_names(self, name, expected_type):
        assert isinstance(make_policy(name), expected_type)

    def test_unknown_policy(self):
        with pytest.raises(PolicyError):
            make_policy("best-effort")
