"""Tests for the DBSCAN feature discretiser."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import DBSCAN1D, NOISE, derive_bins
from repro.exceptions import PolicyError


class TestDBSCAN1D:
    def test_two_well_separated_clusters(self):
        values = np.concatenate([np.linspace(0, 1, 20), np.linspace(10, 11, 20)])
        clusterer = DBSCAN1D(eps=0.5, min_samples=3)
        labels = clusterer.fit_predict(values)
        assert clusterer.num_clusters(values) == 2
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert set(labels[:20]) != set(labels[20:])

    def test_noise_points_labelled_minus_one(self):
        values = np.concatenate([np.zeros(10), np.array([100.0])])
        labels = DBSCAN1D(eps=1.0, min_samples=3).fit_predict(values)
        assert labels[-1] == NOISE
        assert (labels[:10] >= 0).all()

    def test_single_cluster(self):
        values = np.linspace(0, 1, 30)
        assert DBSCAN1D(eps=0.2, min_samples=3).num_clusters(values) == 1

    def test_empty_input(self):
        labels = DBSCAN1D(eps=1.0).fit_predict(np.array([]))
        assert labels.size == 0

    def test_border_points_join_nearest_cluster(self):
        values = np.array([0.0, 0.1, 0.2, 0.3, 0.9])
        labels = DBSCAN1D(eps=0.35, min_samples=3).fit_predict(values)
        # 0.9 is within eps of a core point's neighbourhood edge? it is 0.6 away -> noise.
        assert labels[-1] == NOISE

    def test_invalid_parameters(self):
        with pytest.raises(PolicyError):
            DBSCAN1D(eps=0.0)
        with pytest.raises(PolicyError):
            DBSCAN1D(eps=1.0, min_samples=0)
        with pytest.raises(PolicyError):
            DBSCAN1D(eps=1.0).fit_predict(np.zeros((2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(
        offsets=st.lists(
            st.floats(min_value=5.0, max_value=50.0), min_size=1, max_size=4, unique=True
        )
    )
    def test_number_of_clusters_matches_generated_groups(self, offsets):
        rng = np.random.default_rng(0)
        centers = np.cumsum(np.asarray(sorted(offsets)))
        values = np.concatenate([center + rng.uniform(-0.5, 0.5, 25) for center in centers])
        assert DBSCAN1D(eps=1.0, min_samples=3).num_clusters(values) == len(centers)


class TestDeriveBins:
    def test_thresholds_separate_clusters(self):
        values = np.concatenate([np.full(20, 1.0), np.full(20, 10.0), np.full(20, 30.0)])
        bins = derive_bins(values, eps=2.0, min_samples=3)
        assert len(bins) == 2
        assert 1.0 < bins[0] < 10.0
        assert 10.0 < bins[1] < 30.0

    def test_single_cluster_gives_no_bins(self):
        assert derive_bins(np.linspace(0, 1, 50), eps=0.5) == []

    def test_bins_usable_for_discretisation(self):
        values = np.concatenate([np.full(30, 0.0), np.full(30, 0.5), np.full(30, 1.0)])
        bins = derive_bins(values, eps=0.1, min_samples=3)
        digitised = np.digitize(values, bins)
        assert set(digitised) == {0, 1, 2}
