"""Tests for the Q-learning agent (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.actions import IDLE_ACTION
from repro.core.agent import AutoFLAgent, QLearningConfig
from repro.core.qtable import QTableStore
from repro.core.state import GlobalState, LocalState
from repro.exceptions import PolicyError

GLOBAL_STATE = GlobalState(0, 0, 0, 1, 1, 1)
GOOD_LOCAL = LocalState(0, 0, 0, 2)
BAD_LOCAL = LocalState(3, 3, 1, 0)


def _make_agent(small_fleet, epsilon=0.0, sharing=QTableStore.PER_TIER, seed=0):
    return AutoFLAgent(
        fleet=small_fleet,
        config=QLearningConfig(epsilon=epsilon),
        qtable_sharing=sharing,
        rng=np.random.default_rng(seed),
    )


def _local_states(small_fleet, bad_ids=()):
    return {
        device.device_id: (BAD_LOCAL if device.device_id in bad_ids else GOOD_LOCAL)
        for device in small_fleet
    }


class TestQLearningConfig:
    def test_paper_defaults(self):
        config = QLearningConfig()
        assert config.learning_rate == pytest.approx(0.9)
        assert config.discount_factor == pytest.approx(0.1)
        assert config.epsilon == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(PolicyError):
            QLearningConfig(learning_rate=0.0)
        with pytest.raises(PolicyError):
            QLearningConfig(discount_factor=1.0)
        with pytest.raises(PolicyError):
            QLearningConfig(epsilon=1.5)


class TestAgentSelection:
    def test_selects_requested_number_of_participants(self, small_fleet):
        agent = _make_agent(small_fleet)
        selection = agent.select(GLOBAL_STATE, _local_states(small_fleet), 5)
        assert len(selection.participant_ids) == 5
        assert set(selection.actions) == set(selection.participant_ids)
        assert all(
            action in agent.catalog.action_ids for action in selection.actions.values()
        )

    def test_exploration_round_is_random(self, small_fleet):
        agent = _make_agent(small_fleet, epsilon=1.0)
        selection = agent.select(GLOBAL_STATE, _local_states(small_fleet), 5)
        assert selection.explored

    def test_too_few_devices_rejected(self, small_fleet):
        agent = _make_agent(small_fleet)
        with pytest.raises(PolicyError):
            agent.select(GLOBAL_STATE, {0: GOOD_LOCAL}, 5)
        with pytest.raises(PolicyError):
            agent.select(GLOBAL_STATE, _local_states(small_fleet), 0)

    def test_record_rewards_requires_pending(self, small_fleet):
        agent = _make_agent(small_fleet)
        with pytest.raises(PolicyError):
            agent.record_rewards({0: 1.0})


class TestAgentLearning:
    def test_rewarded_devices_get_reselected(self, small_fleet):
        """Devices whose participation earned high rewards should dominate later rounds."""
        agent = _make_agent(small_fleet, epsilon=0.0, sharing=QTableStore.PER_DEVICE)
        states = _local_states(small_fleet)
        first = agent.select(GLOBAL_STATE, states, 5)
        rewards = {
            device_id: (50.0 if device_id in first.participant_ids else 0.0)
            for device_id in states
        }
        agent.record_rewards(rewards)
        second = agent.select(GLOBAL_STATE, states, 5)
        assert set(second.participant_ids) == set(first.participant_ids)

    def test_penalised_state_gets_avoided(self, small_fleet):
        """With tier-shared tables, a penalised (tier, local-state) pair is avoided."""
        agent = _make_agent(small_fleet, epsilon=0.0)
        bad_ids = set(small_fleet.device_ids[:10])
        states = _local_states(small_fleet, bad_ids=bad_ids)
        for _ in range(6):
            selection = agent.select(GLOBAL_STATE, states, 5)
            rewards = {}
            for device_id in states:
                if device_id in selection.participant_ids:
                    rewards[device_id] = -90.0 if device_id in bad_ids else 40.0
                else:
                    rewards[device_id] = 5.0
            agent.record_rewards(rewards)
        final = agent.select(GLOBAL_STATE, states, 5)
        assert not (set(final.participant_ids) & bad_ids)

    def test_q_update_moves_toward_reward(self, small_fleet):
        agent = _make_agent(small_fleet, epsilon=0.0)
        states = _local_states(small_fleet)
        selection = agent.select(GLOBAL_STATE, states, 3)
        chosen = selection.participant_ids[0]
        action = selection.actions[chosen]
        agent.record_rewards({device_id: 10.0 for device_id in states})
        # The update is applied lazily at the next select() when S' is observed.
        agent.select(GLOBAL_STATE, states, 3)
        table = agent.qtable_store.table_for(chosen, small_fleet[chosen].tier)
        assert table.get(GLOBAL_STATE, GOOD_LOCAL, action) > 5.0

    def test_q_update_survives_device_going_offline(self, small_fleet):
        # Under fleet dynamics a device that failed mid-round is often also offline the
        # next round; its (penalty) reward must still reach the Q-table, bootstrapped
        # from the stored state instead of being dropped.
        agent = _make_agent(small_fleet, epsilon=0.0, sharing=QTableStore.PER_DEVICE)
        states = _local_states(small_fleet)
        selection = agent.select(GLOBAL_STATE, states, 3)
        chosen = selection.participant_ids[0]
        action = selection.actions[chosen]
        agent.record_rewards({device_id: -50.0 for device_id in states})
        # Next round the chosen device is unobservable (offline/churned).
        next_states = {
            device_id: state for device_id, state in states.items() if device_id != chosen
        }
        agent.select(GLOBAL_STATE, next_states, 3)
        table = agent.qtable_store.table_for(chosen, small_fleet[chosen].tier)
        assert table.get(GLOBAL_STATE, GOOD_LOCAL, action) < -20.0

    def test_reward_history_tracks_rounds(self, small_fleet):
        agent = _make_agent(small_fleet, epsilon=0.0)
        states = _local_states(small_fleet)
        for value in (1.0, 2.0, 3.0):
            agent.select(GLOBAL_STATE, states, 4)
            agent.record_rewards({device_id: value for device_id in states})
        assert agent.reward_history == [1.0, 2.0, 3.0]

    def test_flush_completes_pending_updates(self, small_fleet):
        agent = _make_agent(small_fleet, epsilon=0.0)
        states = _local_states(small_fleet)
        selection = agent.select(GLOBAL_STATE, states, 3)
        agent.record_rewards({device_id: 20.0 for device_id in states})
        agent.flush()
        chosen = selection.participant_ids[0]
        table = agent.qtable_store.table_for(chosen, small_fleet[chosen].tier)
        assert table.get(GLOBAL_STATE, GOOD_LOCAL, selection.actions[chosen]) > 10.0

    def test_idle_action_tracked_separately(self, small_fleet):
        agent = _make_agent(small_fleet, epsilon=0.0)
        states = _local_states(small_fleet)
        selection = agent.select(GLOBAL_STATE, states, 3)
        agent.record_rewards({device_id: 15.0 for device_id in states})
        agent.select(GLOBAL_STATE, states, 3)
        idle_device = next(
            device_id for device_id in states if device_id not in selection.participant_ids
        )
        table = agent.qtable_store.table_for(idle_device, small_fleet[idle_device].tier)
        assert table.get(GLOBAL_STATE, GOOD_LOCAL, IDLE_ACTION) > 5.0

    def test_per_device_sharing_keeps_tables_separate(self, small_fleet):
        agent = _make_agent(small_fleet, sharing=QTableStore.PER_DEVICE)
        states = _local_states(small_fleet)
        agent.select(GLOBAL_STATE, states, 3)
        agent.record_rewards({device_id: 1.0 for device_id in states})
        agent.select(GLOBAL_STATE, states, 3)
        assert agent.qtable_store.num_tables == len(small_fleet)
