"""Tests for the action catalog, reward calculator and Q-table storage."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.actions import ActionCatalog, ActionSpec, IDLE_ACTION
from repro.core.qtable import QTable, QTableStore
from repro.core.reward import RewardCalculator, RewardWeights
from repro.core.state import GlobalState, LocalState
from repro.devices.device import MobileDevice
from repro.devices.specs import DeviceTier, MI8_PRO, MOTO_X_FORCE
from repro.exceptions import PolicyError


@pytest.fixture
def device():
    return MobileDevice(0, MI8_PRO, 300)


GLOBAL_STATE = GlobalState(0, 0, 0, 1, 1, 1)
LOCAL_STATE = LocalState(0, 0, 0, 2)
OTHER_LOCAL = LocalState(3, 2, 1, 0)


class TestActionCatalog:
    def test_default_catalog_covers_cpu_dvfs_and_gpu(self, device):
        catalog = ActionCatalog()
        assert len(catalog) == 4
        processors = {catalog.spec(action).processor for action in catalog.action_ids}
        assert processors == {"cpu", "gpu"}

    def test_default_action_is_top_cpu(self, device):
        catalog = ActionCatalog()
        target = catalog.to_target(catalog.default_action_id(), device)
        assert target.processor == "cpu"
        assert target.vf_step == MI8_PRO.cpu.num_vf_steps - 1

    def test_frequency_fraction_maps_to_steps(self, device):
        catalog = ActionCatalog()
        low_action = [a for a in catalog.action_ids if catalog.spec(a).label == "cpu-low"][0]
        target = catalog.to_target(low_action, device)
        assert target.vf_step < MI8_PRO.cpu.num_vf_steps - 1

    def test_same_action_adapts_to_device(self):
        catalog = ActionCatalog()
        high = catalog.to_target(0, MobileDevice(0, MI8_PRO))
        low = catalog.to_target(0, MobileDevice(1, MOTO_X_FORCE))
        assert high.vf_step == MI8_PRO.cpu.num_vf_steps - 1
        assert low.vf_step == MOTO_X_FORCE.cpu.num_vf_steps - 1

    def test_invalid_catalogs(self):
        with pytest.raises(PolicyError):
            ActionCatalog([])
        with pytest.raises(PolicyError):
            ActionCatalog([ActionSpec(IDLE_ACTION, "idle", "cpu", 1.0)])
        with pytest.raises(PolicyError):
            ActionCatalog(
                [ActionSpec(0, "a", "cpu", 1.0), ActionSpec(0, "b", "cpu", 0.5)]
            )

    def test_unknown_action_lookup(self):
        with pytest.raises(PolicyError):
            ActionCatalog().spec(99)


class TestRewardCalculator:
    def test_failed_round_penalty_branch(self):
        calculator = RewardCalculator()
        reward = calculator.reward(100.0, 10.0, accuracy=0.60, previous_accuracy=0.65)
        assert reward == pytest.approx(60.0 - 100.0)

    def test_successful_round_rewards_improvement(self):
        calculator = RewardCalculator()
        calculator.observe_round(100.0, 10.0)
        small = calculator.reward(100.0, 10.0, 0.70, 0.69)
        large = calculator.reward(100.0, 10.0, 0.75, 0.69)
        assert large > small

    def test_lower_energy_gives_higher_reward(self):
        calculator = RewardCalculator()
        calculator.observe_round(100.0, 10.0)
        cheap = calculator.reward(50.0, 5.0, 0.70, 0.69)
        expensive = calculator.reward(200.0, 20.0, 0.70, 0.69)
        assert cheap > expensive

    def test_non_selected_devices_never_hit_penalty_branch(self):
        calculator = RewardCalculator()
        calculator.observe_round(100.0, 10.0)
        reward = calculator.reward(100.0, 0.5, 0.60, 0.65, selected=False)
        assert reward > 0.60 * 100 - 100

    def test_weights_validation(self):
        with pytest.raises(PolicyError):
            RewardWeights(alpha=-1.0)
        with pytest.raises(PolicyError):
            RewardCalculator().reward(1.0, 1.0, 1.5, 0.5)
        with pytest.raises(PolicyError):
            RewardCalculator().observe_round(-1.0, 0.0)

    @given(
        energy=st.floats(min_value=1.0, max_value=1e5),
        accuracy=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_reward_is_finite(self, energy, accuracy):
        calculator = RewardCalculator()
        calculator.observe_round(energy, energy / 10)
        value = calculator.reward(energy, energy / 10, accuracy, accuracy / 2 + 1e-6)
        assert np.isfinite(value)


class TestQTable:
    def test_lazy_random_initialisation_is_stable(self):
        table = QTable(rng=np.random.default_rng(0))
        first = table.get(GLOBAL_STATE, LOCAL_STATE, 0)
        assert table.get(GLOBAL_STATE, LOCAL_STATE, 0) == first
        assert abs(first) < 0.1

    def test_set_and_get(self):
        table = QTable()
        table.set(GLOBAL_STATE, LOCAL_STATE, 1, 5.0)
        assert table.get(GLOBAL_STATE, LOCAL_STATE, 1) == 5.0

    def test_best_action(self):
        table = QTable(rng=np.random.default_rng(0))
        table.set(GLOBAL_STATE, LOCAL_STATE, 0, 1.0)
        table.set(GLOBAL_STATE, LOCAL_STATE, 1, 3.0)
        table.set(GLOBAL_STATE, LOCAL_STATE, 2, -2.0)
        action, value = table.best_action(GLOBAL_STATE, LOCAL_STATE, [0, 1, 2])
        assert action == 1 and value == 3.0

    def test_best_action_requires_candidates(self):
        with pytest.raises(PolicyError):
            QTable().best_action(GLOBAL_STATE, LOCAL_STATE, [])

    def test_states_are_independent(self):
        table = QTable()
        table.set(GLOBAL_STATE, LOCAL_STATE, 0, 9.0)
        assert table.get(GLOBAL_STATE, OTHER_LOCAL, 0) != 9.0

    def test_memory_entries_counts_materialised_pairs(self):
        table = QTable()
        table.get(GLOBAL_STATE, LOCAL_STATE, 0)
        table.get(GLOBAL_STATE, OTHER_LOCAL, 1)
        assert table.memory_entries() == 2


class TestQTableStore:
    def test_per_device_mode_isolates_devices(self):
        store = QTableStore(sharing=QTableStore.PER_DEVICE)
        table_a = store.table_for(0, DeviceTier.HIGH)
        table_b = store.table_for(1, DeviceTier.HIGH)
        assert table_a is not table_b
        assert store.num_tables == 2

    def test_per_tier_mode_shares_within_tier(self):
        store = QTableStore(sharing=QTableStore.PER_TIER)
        assert store.table_for(0, DeviceTier.HIGH) is store.table_for(1, DeviceTier.HIGH)
        assert store.table_for(0, DeviceTier.HIGH) is not store.table_for(2, DeviceTier.LOW)
        assert store.num_tables == 2

    def test_total_entries(self):
        store = QTableStore(sharing=QTableStore.PER_TIER)
        store.table_for(0, DeviceTier.HIGH).get(GLOBAL_STATE, LOCAL_STATE, 0)
        assert store.total_entries() == 1

    def test_invalid_sharing_mode(self):
        with pytest.raises(PolicyError):
            QTableStore(sharing="global")
