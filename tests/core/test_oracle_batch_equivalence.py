"""Pin the batched oracle implementation to a scalar reference reimplementation.

The oracles score candidate templates with ``RoundEngine.estimate_batch``; these tests
re-derive the same decisions with nothing but the scalar ``estimate_device`` loop (the
pre-vectorisation algorithm) and require identical selections and targets.
"""

import numpy as np
import pytest

from repro.core.actions import ActionCatalog
from repro.core.oracle import OracleFLPolicy, OracleParticipantPolicy
from repro.core.selection import CLUSTER_TEMPLATES, scale_template
from repro.devices.specs import DeviceTier
from repro.fl.surrogate import STALL_QUALITY_THRESHOLD
from repro.sim.context import RoundContext
from repro.sim.round_engine import RoundEngine
from repro.sim.scenarios import ScenarioSpec, build_environment


def _context(environment):
    return RoundContext(
        round_index=0,
        environment=environment,
        conditions=environment.sample_round_conditions(),
        accuracy=0.1,
    )


def _goodness(policy, ctx, device_id):
    profile = ctx.environment.data_profile(device_id)
    condition = ctx.condition(device_id)
    network_score = min(1.0, condition.bandwidth_mbps / 100.0)
    return (
        policy.DATA_WEIGHT * profile.data_quality
        - policy.INTERFERENCE_WEIGHT * (condition.co_cpu_util + 0.5 * condition.co_mem_util)
        + policy.NETWORK_WEIGHT * network_score
    )


def _realize_template_scalar(policy, ctx, template):
    fleet = ctx.environment.fleet
    num_participants = ctx.environment.global_params.num_participants
    counts = scale_template(template, num_participants)
    chosen = []
    for tier in (DeviceTier.HIGH, DeviceTier.MID, DeviceTier.LOW):
        wanted = counts.get(tier, 0)
        if wanted == 0:
            continue
        candidates = [device.device_id for device in fleet.by_tier(tier)]
        candidates.sort(key=lambda device_id: _goodness(policy, ctx, device_id), reverse=True)
        chosen.extend(candidates[:wanted])
    if len(chosen) < num_participants:
        remaining = [
            device_id
            for device_id in sorted(
                fleet.device_ids,
                key=lambda device_id: _goodness(policy, ctx, device_id),
                reverse=True,
            )
            if device_id not in set(chosen)
        ]
        chosen.extend(remaining[: num_participants - len(chosen)])
    return chosen[:num_participants]


def _expected_gain_scalar(ctx, participants):
    profiles = [ctx.environment.data_profile(device_id) for device_id in participants]
    total_samples = sum(profile.num_samples for profile in profiles)
    if total_samples == 0:
        return 0.0
    quality = (
        sum(profile.data_quality * profile.num_samples for profile in profiles) / total_samples
    )
    if quality <= STALL_QUALITY_THRESHOLD:
        return 0.0
    return (quality - STALL_QUALITY_THRESHOLD) / (1.0 - STALL_QUALITY_THRESHOLD)


def _ofl_targets_scalar(ctx, engine, participants):
    fleet = ctx.environment.fleet
    catalog = ActionCatalog()
    default_outcomes = {
        device_id: engine.estimate_device(
            fleet[device_id], fleet[device_id].default_target(), ctx.condition(device_id)
        )
        for device_id in participants
    }
    deadline = max(outcome.total_time_s for outcome in default_outcomes.values())
    targets = {}
    for device_id in participants:
        device = fleet[device_id]
        condition = ctx.condition(device_id)
        best_target = device.default_target()
        best_energy = default_outcomes[device_id].energy.active_j
        best_time = default_outcomes[device_id].total_time_s
        for action_id in catalog.action_ids:
            target = catalog.to_target(action_id, device)
            outcome = engine.estimate_device(device, target, condition)
            meets_deadline = outcome.total_time_s <= deadline * 1.001
            if meets_deadline and outcome.energy.active_j < best_energy:
                best_target = target
                best_energy = outcome.energy.active_j
                best_time = outcome.total_time_s
            elif not meets_deadline and best_time > deadline and outcome.total_time_s < best_time:
                best_target = target
                best_energy = outcome.energy.active_j
                best_time = outcome.total_time_s
        targets[device_id] = best_target
    return targets


def _score_scalar(ctx, engine, participants, targets):
    outcomes = {
        device_id: engine.estimate_device(
            ctx.environment.fleet[device_id], targets[device_id], ctx.condition(device_id)
        )
        for device_id in participants
    }
    round_time = max(outcome.total_time_s for outcome in outcomes.values())
    active = sum(outcome.energy.active_j for outcome in outcomes.values())
    idle = sum(
        device.idle_power() * round_time
        for device in ctx.environment.fleet
        if device.device_id not in outcomes
    )
    energy = active + idle
    gain = _expected_gain_scalar(ctx, participants)
    return (0.05 + gain) / energy if energy > 0 else 0.0


@pytest.mark.parametrize("seed", [0, 7, 23])
@pytest.mark.parametrize("interference", ["none", "moderate"])
def test_oparticipant_matches_scalar_reference(seed, interference):
    environment = build_environment(
        ScenarioSpec(
            num_devices=40,
            setting="S4",
            interference=interference,
            network="variable",
            data_distribution="non_iid_50",
            seed=seed,
        )
    )
    ctx = _context(environment)
    policy = OracleParticipantPolicy(rng=np.random.default_rng(0))
    decision = policy.select(ctx)

    engine = RoundEngine(environment)
    plans = {}
    for name, template in CLUSTER_TEMPLATES.items():
        participants = _realize_template_scalar(policy, ctx, template)
        targets = {
            device_id: environment.fleet[device_id].default_target()
            for device_id in participants
        }
        plans[name] = (participants, _score_scalar(ctx, engine, participants, targets))
    expected_participants = max(plans.values(), key=lambda plan: plan[1])[0]
    assert decision.participants == expected_participants
    for device_id in decision.participants:
        assert decision.targets[device_id] == environment.fleet[device_id].default_target()


@pytest.mark.parametrize("seed", [1, 11])
def test_ofl_targets_match_scalar_reference(seed):
    environment = build_environment(
        ScenarioSpec(
            num_devices=40,
            setting="S4",
            interference="moderate",
            network="variable",
            seed=seed,
        )
    )
    ctx = _context(environment)
    decision = OracleFLPolicy(rng=np.random.default_rng(0)).select(ctx)
    engine = RoundEngine(environment)
    expected = _ofl_targets_scalar(ctx, engine, decision.participants)
    assert decision.targets == expected
