"""Tests for the oracle policies and the AutoFL controller policy."""

import numpy as np
import pytest

from repro.core.controller import AutoFLPolicy
from repro.core.oracle import OracleFLPolicy, OracleParticipantPolicy
from repro.core.qtable import QTableStore
from repro.devices.device import RoundConditions
from repro.exceptions import PolicyError
from repro.sim.context import RoundContext
from repro.sim.round_engine import RoundEngine
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend


def _context(environment, accuracy=0.1, conditions=None):
    conditions = conditions if conditions is not None else environment.sample_round_conditions()
    return RoundContext(
        round_index=0, environment=environment, conditions=conditions, accuracy=accuracy
    )


@pytest.fixture
def heterogeneous_environment():
    spec = ScenarioSpec(
        workload="cnn-mnist",
        setting="S4",
        num_devices=40,
        data_distribution="non_iid_50",
        seed=5,
    )
    return build_environment(spec)


class TestOracleParticipantPolicy:
    def test_selects_k_participants_with_targets(self, small_environment):
        policy = OracleParticipantPolicy(rng=np.random.default_rng(0))
        decision = policy.select(_context(small_environment))
        assert len(decision.participants) == small_environment.global_params.num_participants
        assert set(decision.targets) == set(decision.participants)

    def test_prefers_iid_devices(self, heterogeneous_environment):
        policy = OracleParticipantPolicy(rng=np.random.default_rng(0))
        decision = policy.select(_context(heterogeneous_environment))
        qualities = [
            heterogeneous_environment.data_profile(device_id).data_quality
            for device_id in decision.participants
        ]
        population = [
            profile.data_quality
            for profile in heterogeneous_environment.data_profiles.values()
        ]
        assert np.mean(qualities) > np.mean(population) + 0.1

    def test_avoids_interference_heavy_devices(self, small_environment):
        conditions = {
            device_id: RoundConditions() for device_id in small_environment.fleet.device_ids
        }
        # Make half the devices heavily interfered.
        loaded = small_environment.fleet.device_ids[::2]
        for device_id in loaded:
            conditions[device_id] = RoundConditions(co_cpu_util=0.95, co_mem_util=0.9)
        policy = OracleParticipantPolicy(rng=np.random.default_rng(0))
        decision = policy.select(_context(small_environment, conditions=conditions))
        selected_loaded = len(set(decision.participants) & set(loaded))
        assert selected_loaded < len(decision.participants) / 2


class TestOracleFLPolicy:
    def test_targets_never_slower_than_round_deadline(self, small_environment):
        conditions = small_environment.sample_round_conditions()
        ctx = _context(small_environment, conditions=conditions)
        policy = OracleFLPolicy(rng=np.random.default_rng(0))
        decision = policy.select(ctx)
        engine = RoundEngine(small_environment)
        default_times = [
            engine.estimate_device(
                small_environment.fleet[device_id],
                small_environment.fleet[device_id].default_target(),
                conditions[device_id],
            ).total_time_s
            for device_id in decision.participants
        ]
        chosen_times = [
            engine.estimate_device(
                small_environment.fleet[device_id],
                decision.targets[device_id],
                conditions[device_id],
            ).total_time_s
            for device_id in decision.participants
        ]
        assert max(chosen_times) <= max(default_times) * 1.01

    def test_saves_energy_compared_to_default_targets(self, small_environment):
        conditions = small_environment.sample_round_conditions()
        ctx = _context(small_environment, conditions=conditions)
        ofl = OracleFLPolicy(rng=np.random.default_rng(0)).select(ctx)
        engine = RoundEngine(small_environment)

        def active_energy(decision, use_targets):
            total = 0.0
            for device_id in decision.participants:
                device = small_environment.fleet[device_id]
                target = decision.targets[device_id] if use_targets else device.default_target()
                total += engine.estimate_device(device, target, conditions[device_id]).energy.active_j
            return total

        assert active_energy(ofl, True) <= active_energy(ofl, False) + 1e-9


class TestAutoFLPolicy:
    def test_agent_created_lazily(self):
        policy = AutoFLPolicy(rng=np.random.default_rng(0))
        with pytest.raises(PolicyError):
            _ = policy.agent

    def test_select_and_feedback_cycle(self, small_environment, small_backend):
        policy = AutoFLPolicy(rng=np.random.default_rng(0))
        engine = RoundEngine(small_environment)
        for round_index in range(5):
            conditions = small_environment.sample_round_conditions()
            ctx = RoundContext(round_index, small_environment, conditions, small_backend.accuracy)
            decision = policy.select(ctx)
            assert (
                len(decision.participants)
                == small_environment.global_params.num_participants
            )
            assert set(decision.targets) == set(decision.participants)
            execution = engine.execute(decision, conditions)
            training = small_backend.run_round(execution.participant_ids)
            policy.feedback(ctx, decision, execution, training)
        assert len(policy.reward_history()) == 5
        assert policy.agent.qtable_store.total_entries() > 0

    def test_qtable_sharing_mode_respected(self, small_environment, small_backend):
        policy = AutoFLPolicy(rng=np.random.default_rng(0), qtable_sharing=QTableStore.PER_DEVICE)
        conditions = small_environment.sample_round_conditions()
        ctx = RoundContext(0, small_environment, conditions, small_backend.accuracy)
        policy.select(ctx)
        assert policy.agent.qtable_store.sharing == QTableStore.PER_DEVICE

    def test_learns_to_avoid_non_iid_devices(self):
        """After enough rounds AutoFL should select mostly IID devices (paper Figure 11)."""
        spec = ScenarioSpec(
            workload="cnn-mnist",
            setting="S4",
            num_devices=60,
            data_distribution="non_iid_50",
            seed=3,
            max_rounds=60,
        )
        environment = build_environment(spec)
        backend = build_surrogate_backend(environment)
        policy = AutoFLPolicy(rng=np.random.default_rng(1))
        engine = RoundEngine(environment)
        last_selections = []
        for round_index in range(60):
            conditions = environment.sample_round_conditions()
            ctx = RoundContext(round_index, environment, conditions, backend.accuracy)
            decision = policy.select(ctx)
            execution = engine.execute(decision, conditions)
            training = backend.run_round(execution.participant_ids)
            policy.feedback(ctx, decision, execution, training)
            if round_index >= 40:
                last_selections.append(decision.participants)
        non_iid_ids = {
            device_id
            for device_id, profile in environment.data_profiles.items()
            if profile.is_non_iid
        }
        fractions = [
            len(set(selection) & non_iid_ids) / len(selection) for selection in last_selections
        ]
        # The population is 50 % non-IID; the learned selection should be well below that.
        assert np.mean(fractions) < 0.35

    def test_reward_history_empty_before_first_round(self):
        assert AutoFLPolicy().reward_history() == []
