"""Pin the vectorised AutoFL hot path to the scalar reference implementation.

With per-device Q-table sharing and ``init_scale=0.0`` (no per-entry init draws on the
shared RNG stream) the vectorised agent consumes the exact same random numbers as the
scalar agent, so selections and targets must match bit-for-bit every round; energies may
differ only by float summation order (``np.sum`` pairwise vs Python sequential), pinned
at 1e-9 relative.
"""

import numpy as np
import pytest

from repro.core.controller import AutoFLPolicy
from repro.core.qtable import QTableStore
from repro.core.reward import RewardCalculator
from repro.core.state import StateEncoder
from repro.experiments.runner import POLICY_SEED_OFFSET
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend

STATIC_SPEC = dict(workload="cnn-mnist", num_devices=60, max_rounds=8)
DYNAMIC_SPEC = dict(
    workload="cnn-mnist",
    num_devices=80,
    max_rounds=8,
    interference="heavy",
    network="variable",
    data_distribution="non_iid_50",
    availability="diurnal",
    churn_rate=0.02,
    dropout_rate=0.05,
    slow_fault_rate=0.05,
)


def _run(spec_kwargs, vectorized, seed=0):
    spec = ScenarioSpec(seed=seed, **spec_kwargs)
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = AutoFLPolicy(
        rng=np.random.default_rng(seed + POLICY_SEED_OFFSET),
        qtable_sharing=QTableStore.PER_DEVICE,
        vectorized=vectorized,
        init_scale=0.0,
    )
    result = FLSimulation(
        environment, policy, backend, stop_at_convergence=False
    ).run()
    return result, policy


@pytest.mark.parametrize("spec_kwargs", [STATIC_SPEC, DYNAMIC_SPEC], ids=["static", "dynamics"])
def test_vectorized_autofl_matches_scalar(spec_kwargs):
    scalar_result, scalar_policy = _run(spec_kwargs, vectorized=False)
    vector_result, vector_policy = _run(spec_kwargs, vectorized=True)
    assert len(scalar_result.records) == len(vector_result.records)
    for scalar_round, vector_round in zip(scalar_result.records, vector_result.records):
        # Stream-equivalence: identical RNG consumption means identical picks/targets.
        assert vector_round.selected_ids == scalar_round.selected_ids
        assert vector_round.targets == scalar_round.targets
        assert vector_round.dropped_ids == scalar_round.dropped_ids
        assert vector_round.failed_ids == scalar_round.failed_ids
        assert vector_round.accuracy == scalar_round.accuracy
        assert vector_round.round_time_s == scalar_round.round_time_s
        assert vector_round.global_energy_j == pytest.approx(
            scalar_round.global_energy_j, rel=1e-9
        )
        assert vector_round.participant_energy_j == pytest.approx(
            scalar_round.participant_energy_j, rel=1e-9
        )
    # The learned signal matches too: same per-round mean rewards within float noise.
    assert scalar_policy.reward_history() == pytest.approx(
        vector_policy.reward_history(), rel=1e-9, abs=1e-12
    )


def test_autofl_fast_is_registered():
    from repro.registry import POLICIES

    policy = POLICIES.create("autofl-fast", rng=np.random.default_rng(0))
    assert isinstance(policy, AutoFLPolicy)
    assert policy.vectorized
    assert policy.name == "autofl-fast"


def test_rewards_batch_matches_scalar_reward():
    calculator_scalar = RewardCalculator()
    calculator_batch = RewardCalculator()
    rng = np.random.default_rng(42)
    num_devices = 64
    for round_index in range(5):
        global_energy = float(rng.uniform(50.0, 150.0))
        local = rng.uniform(0.0, 5.0, size=num_devices)
        selected = rng.random(num_devices) < 0.3
        failed = selected & (rng.random(num_devices) < 0.2)
        accuracy = 0.1 + 0.05 * round_index
        previous = accuracy - 0.05
        mean_local = float(np.mean(local[selected])) if selected.any() else 0.0
        calculator_scalar.observe_round(global_energy, mean_local)
        calculator_batch.observe_round(global_energy, mean_local)
        expected = np.array(
            [
                calculator_scalar.reward(
                    global_energy_j=global_energy,
                    local_energy_j=float(local[i]),
                    accuracy=accuracy,
                    previous_accuracy=previous,
                    selected=bool(selected[i]),
                    failed=bool(failed[i]),
                )
                for i in range(num_devices)
            ]
        )
        batched = calculator_batch.rewards_batch(
            global_energy_j=global_energy,
            local_energy_j=local,
            accuracy=accuracy,
            previous_accuracy=previous,
            selected=selected,
            failed=failed,
        )
        assert np.array_equal(batched, expected)


def test_encode_local_codes_matches_scalar_encoding():
    encoder = StateEncoder()
    spec = ScenarioSpec(seed=3, **STATIC_SPEC)
    environment = build_environment(spec)
    arrays = environment.sample_condition_arrays()
    fleet_ids = environment.fleet.device_ids
    codes = encoder.encode_local_codes(arrays, environment.class_fraction_array)
    mapping = arrays.to_mapping(fleet_ids)
    for row, device_id in enumerate(fleet_ids):
        state = encoder.encode_local(
            mapping[device_id], environment.data_profile(device_id)
        )
        assert int(codes[row]) == StateEncoder.local_code(state)


def test_encode_local_codes_threshold_ties_match():
    # On-threshold values must land in the same bin on both paths.
    from repro.devices.fleet_arrays import RoundConditionsArrays

    encoder = StateEncoder()
    thresholds = np.array(encoder.UTILIZATION_THRESHOLDS, dtype=np.float64)
    values = np.concatenate([thresholds, thresholds - 1e-12, thresholds + 1e-12, [0.0, 1.0]])
    n = len(values)
    arrays = RoundConditionsArrays(
        co_cpu_util=values,
        co_mem_util=np.zeros(n),
        bandwidth_mbps=np.full(n, 100.0),
    )
    data_thresholds = np.array(encoder.DATA_THRESHOLDS, dtype=np.float64)
    fractions = np.resize(
        np.concatenate([data_thresholds, data_thresholds + 1e-12, [0.0, 1.0]]), n
    )
    codes = encoder.encode_local_codes(arrays, fractions)
    mapping = arrays.to_mapping(list(range(n)))

    class _Profile:
        def __init__(self, class_fraction):
            self.class_fraction = class_fraction

    for row in range(n):
        state = encoder.encode_local(mapping[row], _Profile(float(fractions[row])))
        assert int(codes[row]) == StateEncoder.local_code(state)
