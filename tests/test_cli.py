"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


def _run(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_list_policies(self, capsys):
        code, out, _err = _run(["list", "policies"], capsys)
        assert code == 0
        for name in ("fedavg-random", "power", "performance", "autofl", "ofl", "cluster-c7"):
            assert name in out

    def test_list_all_registries(self, capsys):
        code, out, _err = _run(["list"], capsys)
        assert code == 0
        assert "policies" in out and "workloads" in out and "settings" in out

    def test_unknown_registry_fails_with_suggestion(self, capsys):
        code, _out, err = _run(["list", "polices"], capsys)
        assert code == 2
        assert "did you mean 'policies'" in err


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "6",
             "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out and "accuracy" in out

    def test_unknown_policy_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--policy", "autofk", "--devices", "30", "--rounds", "5", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_run_scenario_preset_with_overrides(self, capsys):
        # flaky-fleet end to end, scaled down for speed; explicit flags beat the preset.
        code, out, _err = _run(
            ["run", "--scenario", "flaky-fleet", "--devices", "30", "--rounds", "5",
             "--policy", "fedavg-random", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_run_dynamics_flags(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "5",
             "--availability", "bernoulli", "--dropout-rate", "0.2", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_unknown_scenario_preset_fails_with_suggestion(self, capsys):
        code, _out, err = _run(
            ["run", "--scenario", "flaky-flet", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'flaky-fleet'" in err

    def test_unknown_availability_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--availability", "diurnall", "--devices", "30", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'diurnal'" in err


class TestCompare:
    def test_compare_normalises_to_baseline(self, capsys):
        code, out, _err = _run(
            ["compare", "--policies", "fedavg-random,performance", "--devices", "30",
             "--rounds", "6"],
            capsys,
        )
        assert code == 0
        assert "PPW (global)" in out and "performance" in out

    def test_baseline_must_be_in_lineup(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "performance", "--devices", "30", "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "baseline" in err


class TestSweep:
    @pytest.fixture
    def store(self, tmp_path):
        return str(tmp_path / "results.jsonl")

    def test_grid_runs_then_rerun_serves_from_cache(self, store, capsys):
        args = [
            "sweep",
            "--axis", "policy=fedavg-random,performance",
            "--axis", "setting=S3,S4",
            "--devices", "30",
            "--rounds", "6",
            "--store", store,
            "--executor", "process",
        ]
        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 0 from cache, 4 executed" in out

        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 4 from cache, 0 executed" in out
        assert "run" not in [line.split()[-1] for line in out.splitlines() if line][1:-1]

    def test_bad_axis_fails_early(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "polcy=autofl", "--store", store], capsys
        )
        assert code == 2
        assert "unknown sweep axis" in err

    def test_duplicate_axis_rejected(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "policy=autofl", "--axis", "policy=fedavg-random",
             "--store", store],
            capsys,
        )
        assert code == 2
        assert "given twice" in err

    def test_compare_rejects_replication_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--policies", "fedavg-random", "--seeds", "5"])
        _captured = capsys.readouterr()


class TestBench:
    def test_bench_writes_record(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code, out, _err = _run(
            ["bench", "--sizes", "30", "--repeats", "2", "--output", str(output)],
            capsys,
        )
        assert code == 0
        assert "speedup" in out
        assert output.exists()

    def test_bench_rejects_malformed_sizes(self, tmp_path, capsys):
        code, _out, err = _run(
            ["bench", "--sizes", "30,abc", "--output", str(tmp_path / "bench.json")],
            capsys,
        )
        assert code == 2
        assert "invalid --sizes" in err

    def test_list_scenarios_registry(self, capsys):
        code, out, _err = _run(["list", "scenarios"], capsys)
        assert code == 0
        assert "fleet-1k" in out and "fleet-10k" in out
        for preset in ("diurnal-1k", "flaky-fleet", "churn-heavy"):
            assert preset in out

    def test_list_availability_registry(self, capsys):
        code, out, _err = _run(["list", "availability"], capsys)
        assert code == 0
        for process in ("always-on", "bernoulli", "markov", "diurnal", "trace"):
            assert process in out


class TestValidate:
    """The validate verbs: record/check round-trips, fuzz, and their exit codes."""

    #: A preset small enough that record + check stay fast in the test suite.
    PRESET = "churn-heavy"

    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        golden_dir = str(tmp_path / "goldens")
        code, out, _err = _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", golden_dir,
             "--rounds", "3"],
            capsys,
        )
        assert code == 0
        assert f"recorded golden '{self.PRESET}'" in out
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", golden_dir],
            capsys,
        )
        assert code == 0
        assert "OK (3 rounds bit-exact)" in out

    def test_check_drift_exits_one_and_writes_report(self, tmp_path, capsys):
        import json

        golden_dir = tmp_path / "goldens"
        _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--rounds", "3"],
            capsys,
        )
        path = golden_dir / f"{self.PRESET}.jsonl"
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["accuracy"] += 1e-9
        lines[1] = json.dumps(row, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        report_path = tmp_path / "drift.json"
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--report", str(report_path)],
            capsys,
        )
        assert code == 1
        assert "DRIFT at round 0: accuracy" in out
        payload = json.loads(report_path.read_text())
        assert payload["goldens"][0]["ok"] is False
        assert payload["goldens"][0]["divergences"][0]["field"] == "accuracy"

    def test_check_without_recorded_golden_fails(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "check", "--presets", self.PRESET,
             "--dir", str(tmp_path / "empty")],
            capsys,
        )
        assert code == 2
        assert "no golden recorded" in err

    def test_fuzz_reports_scenarios_and_writes_artifact(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "fuzz.json"
        code, out, _err = _run(
            ["validate", "fuzz", "--count", "5", "--seed", "3",
             "--report", str(report_path)],
            capsys,
        )
        assert code == 0
        assert "5 scenario(s)" in out and "OK" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True and payload["scenarios_run"] == 5


class TestErrorPaths:
    """Unknown names exit non-zero with the did-you-mean suggestion rendered."""

    def test_validate_unknown_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "record", "--presets", "churn-hevy",
             "--dir", str(tmp_path / "g")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'churn-heavy'" in err

    def test_compare_unknown_policy_suggests(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "fedavg-random,autofk", "--devices", "30",
             "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_sweep_unknown_scenario_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["sweep", "--scenario", "flet-1k", "--store", str(tmp_path / "s.jsonl")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'fleet-1k'" in err

    def test_run_unknown_workload_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--workload", "cnn-mnis", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'cnn-mnist'" in err

    def test_run_unknown_aggregator_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--aggregator", "fedprx", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'fedprox'" in err


class TestService:
    """The orchestration front-end: submit → serve --drain → status/watch/cancel."""

    @pytest.fixture
    def svc(self, tmp_path):
        return ["--root", str(tmp_path / "service")]

    @pytest.fixture
    def store(self, tmp_path):
        return ["--store", str(tmp_path / "results.sqlite")]

    def _submit(self, capsys, svc, extra):
        code, out, _err = _run(["submit", *extra, *svc], capsys)
        assert code == 0
        assert out.startswith("submitted job-")
        return out.split()[1].rstrip(":")

    def test_submit_serve_status_roundtrip(self, capsys, svc, store):
        job_id = self._submit(
            capsys, svc,
            ["--scenario", "flaky-fleet", "--devices", "25", "--rounds", "4",
             "--policy", "fedavg-random", "--priority", "3"],
        )
        code, out, _err = _run(["status", *svc], capsys)
        assert code == 0 and job_id in out and "queued" in out

        code, out, _err = _run(["serve", "--workers", "2", "--drain", *svc, *store], capsys)
        assert code == 0
        assert "job_done" in out and "scheduler_stopped" in out

        code, out, _err = _run(["status", "--json", *svc], capsys)
        payload = json.loads(out)
        assert payload["counts"]["done"] == 1
        (job,) = payload["jobs"]
        assert job["job_id"] == job_id
        assert job["state"] == "done"
        assert (job["cache_hits"], job["executed"]) == (0, 1)
        assert job["provenance"]["preset"] == "flaky-fleet"

    def test_resubmit_is_a_pure_cache_hit(self, capsys, svc, store):
        flags = ["--devices", "25", "--rounds", "4", "--policy", "fedavg-random"]
        self._submit(capsys, svc, flags)
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        job_id = self._submit(capsys, svc, flags)
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["status", job_id, *svc, *store], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["state"] == "done"
        assert (payload["cache_hits"], payload["executed"]) == (1, 0)

    def test_submit_sweep_axis_expands_grid(self, capsys, svc):
        job_id = self._submit(
            capsys, svc,
            ["--axis", "policy=fedavg-random,performance", "--devices", "25",
             "--rounds", "4"],
        )
        code, out, _err = _run(["status", job_id, *svc], capsys)
        assert code == 0
        assert len(json.loads(out)["specs"]) == 2

    def test_submit_validates_eagerly_with_suggestions(self, capsys, svc):
        code, _out, err = _run(
            ["submit", "--policy", "autofk", "--devices", "25", *svc], capsys
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_cancel_queued_job(self, capsys, svc):
        job_id = self._submit(capsys, svc, ["--devices", "25", "--rounds", "4"])
        code, out, _err = _run(["cancel", job_id, *svc], capsys)
        assert code == 0 and "cancelled" in out
        code, out, _err = _run(["status", job_id, *svc], capsys)
        assert json.loads(out)["state"] == "cancelled"

    def test_cancel_unknown_job_fails(self, capsys, svc):
        code, _out, err = _run(["cancel", "job-missing", *svc], capsys)
        assert code == 2 and "unknown job" in err

    def test_watch_replays_the_event_log(self, capsys, svc, store):
        self._submit(capsys, svc, ["--devices", "25", "--rounds", "4"])
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["watch", *svc], capsys)
        assert code == 0
        assert "job_submitted" in out and "job_done" in out

    def test_watch_without_events(self, capsys, svc):
        code, out, _err = _run(["watch", *svc], capsys)
        assert code == 0 and "no events yet" in out

    def test_failed_job_status_exits_one(self, capsys, svc, store, tmp_path):
        # A spec whose tier counts contradict the fleet size fails inside the worker.
        job_id = self._submit(
            capsys, svc, ["--devices", "25", "--rounds", "4", "--timeout", "30"]
        )
        queue_dir = tmp_path / "service" / "queue" / "queued"
        (path,) = queue_dir.glob("*.json")
        payload = json.loads(path.read_text())
        payload["specs"][0]["scenario"]["tier_counts"] = {"low": 1, "mid": 1, "high": 1}
        path.write_text(json.dumps(payload))
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["status", job_id, *svc, *store], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["state"] == "failed"
        assert "tier_counts" in payload["error"]


class TestStoreBenchCLI:
    def test_store_suite_writes_record(self, tmp_path, capsys):
        output = tmp_path / "BENCH_store.json"
        code, out, _err = _run(
            ["bench", "--suite", "store", "--entries", "50", "--lookups", "10",
             "--output", str(output)],
            capsys,
        )
        assert code == 0
        assert "sqlite" in out and "jsonl" in out
        record = json.loads(output.read_text())
        assert record["benchmark"] == "store"
        assert record["entries"] == 50


class TestSqliteStoreCLI:
    def test_run_uses_the_sqlite_store_by_default_backend(self, tmp_path, capsys):
        store = tmp_path / "results.sqlite"
        args = ["run", "--policy", "fedavg-random", "--devices", "25", "--rounds", "4",
                "--store", str(store)]
        code, out, _err = _run(args, capsys)
        assert code == 0 and "1 executed" in out
        code, out, _err = _run(args, capsys)
        assert code == 0 and "1 from cache" in out

    def test_legacy_jsonl_sibling_is_migrated_in(self, tmp_path, capsys):
        args = ["run", "--policy", "fedavg-random", "--devices", "25", "--rounds", "4"]
        code, _out, _err = _run([*args, "--store", str(tmp_path / "results.jsonl")], capsys)
        assert code == 0
        code, out, _err = _run([*args, "--store", str(tmp_path / "results.sqlite")], capsys)
        assert code == 0
        assert "1 from cache, 0 executed" in out  # served by the migrated entry
