"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main


def _run(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_list_policies(self, capsys):
        code, out, _err = _run(["list", "policies"], capsys)
        assert code == 0
        for name in ("fedavg-random", "power", "performance", "autofl", "ofl", "cluster-c7"):
            assert name in out

    def test_list_all_registries(self, capsys):
        code, out, _err = _run(["list"], capsys)
        assert code == 0
        assert "policies" in out and "workloads" in out and "settings" in out

    def test_unknown_registry_fails_with_suggestion(self, capsys):
        code, _out, err = _run(["list", "polices"], capsys)
        assert code == 2
        assert "did you mean 'policies'" in err


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "6",
             "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out and "accuracy" in out

    def test_unknown_policy_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--policy", "autofk", "--devices", "30", "--rounds", "5", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_run_scenario_preset_with_overrides(self, capsys):
        # flaky-fleet end to end, scaled down for speed; explicit flags beat the preset.
        code, out, _err = _run(
            ["run", "--scenario", "flaky-fleet", "--devices", "30", "--rounds", "5",
             "--policy", "fedavg-random", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_run_dynamics_flags(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "5",
             "--availability", "bernoulli", "--dropout-rate", "0.2", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_unknown_scenario_preset_fails_with_suggestion(self, capsys):
        code, _out, err = _run(
            ["run", "--scenario", "flaky-flet", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'flaky-fleet'" in err

    def test_unknown_availability_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--availability", "diurnall", "--devices", "30", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'diurnal'" in err


class TestCompare:
    def test_compare_normalises_to_baseline(self, capsys):
        code, out, _err = _run(
            ["compare", "--policies", "fedavg-random,performance", "--devices", "30",
             "--rounds", "6"],
            capsys,
        )
        assert code == 0
        assert "PPW (global)" in out and "performance" in out

    def test_baseline_must_be_in_lineup(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "performance", "--devices", "30", "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "baseline" in err


class TestSweep:
    @pytest.fixture
    def store(self, tmp_path):
        return str(tmp_path / "results.jsonl")

    def test_grid_runs_then_rerun_serves_from_cache(self, store, capsys):
        args = [
            "sweep",
            "--axis", "policy=fedavg-random,performance",
            "--axis", "setting=S3,S4",
            "--devices", "30",
            "--rounds", "6",
            "--store", store,
            "--executor", "process",
        ]
        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 0 from cache, 4 executed" in out

        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 4 from cache, 0 executed" in out
        assert "run" not in [line.split()[-1] for line in out.splitlines() if line][1:-1]

    def test_bad_axis_fails_early(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "polcy=autofl", "--store", store], capsys
        )
        assert code == 2
        assert "unknown sweep axis" in err

    def test_duplicate_axis_rejected(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "policy=autofl", "--axis", "policy=fedavg-random",
             "--store", store],
            capsys,
        )
        assert code == 2
        assert "given twice" in err

    def test_compare_rejects_replication_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--policies", "fedavg-random", "--seeds", "5"])
        _captured = capsys.readouterr()


class TestBench:
    def test_bench_writes_record_and_registers_it(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        warehouse = tmp_path / "wh"
        code, out, _err = _run(
            ["bench", "--sizes", "30", "--repeats", "2", "--replicates", "0",
             "--output", str(output), "--warehouse", str(warehouse)],
            capsys,
        )
        assert code == 0
        assert "speedup" in out
        assert output.exists()
        assert "registered 1 measurement(s)" in out

        from repro.analytics import Warehouse, run_query

        result = run_query(Warehouse(warehouse), "bench", group_by=("benchmark",))
        ((benchmark, *_),) = result.rows
        assert benchmark == "roundengine"

    def test_bench_replication_registers_its_own_row(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        warehouse = tmp_path / "wh"
        code, out, _err = _run(
            ["bench", "--sizes", "30", "--repeats", "2", "--replicates", "2",
             "--replication-rounds", "2", "--output", str(output),
             "--warehouse", str(warehouse)],
            capsys,
        )
        assert code == 0
        assert "replication @" in out
        assert "registered 2 measurement(s)" in out

        from repro.analytics import Warehouse, run_query

        result = run_query(Warehouse(warehouse), "bench", group_by=("benchmark",))
        assert {row[0] for row in result.rows} == {
            "roundengine",
            "roundengine-replication",
        }

    def test_no_warehouse_skips_registration(self, tmp_path, capsys):
        code, out, _err = _run(
            ["bench", "--sizes", "30", "--repeats", "1", "--replicates", "0",
             "--output", str(tmp_path / "bench.json"), "--no-warehouse"],
            capsys,
        )
        assert code == 0
        assert "registered" not in out

    def test_bench_rejects_malformed_sizes(self, tmp_path, capsys):
        code, _out, err = _run(
            ["bench", "--sizes", "30,abc", "--output", str(tmp_path / "bench.json"),
             "--no-warehouse"],
            capsys,
        )
        assert code == 2
        assert "invalid --sizes" in err

    def test_list_scenarios_registry(self, capsys):
        code, out, _err = _run(["list", "scenarios"], capsys)
        assert code == 0
        assert "fleet-1k" in out and "fleet-10k" in out
        for preset in ("diurnal-1k", "flaky-fleet", "churn-heavy"):
            assert preset in out

    def test_list_availability_registry(self, capsys):
        code, out, _err = _run(["list", "availability"], capsys)
        assert code == 0
        for process in ("always-on", "bernoulli", "markov", "diurnal", "trace"):
            assert process in out


class TestValidate:
    """The validate verbs: record/check round-trips, fuzz, and their exit codes."""

    #: A preset small enough that record + check stay fast in the test suite.
    PRESET = "churn-heavy"

    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        golden_dir = str(tmp_path / "goldens")
        code, out, _err = _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", golden_dir,
             "--rounds", "3"],
            capsys,
        )
        assert code == 0
        assert f"recorded golden '{self.PRESET}'" in out
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", golden_dir],
            capsys,
        )
        assert code == 0
        assert "OK (3 rounds bit-exact)" in out

    def test_check_drift_exits_one_and_writes_report(self, tmp_path, capsys):
        import json

        golden_dir = tmp_path / "goldens"
        _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--rounds", "3"],
            capsys,
        )
        path = golden_dir / f"{self.PRESET}.jsonl"
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["accuracy"] += 1e-9
        lines[1] = json.dumps(row, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        report_path = tmp_path / "drift.json"
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--report", str(report_path)],
            capsys,
        )
        assert code == 1
        assert "DRIFT at round 0: accuracy" in out
        payload = json.loads(report_path.read_text())
        assert payload["goldens"][0]["ok"] is False
        assert payload["goldens"][0]["divergences"][0]["field"] == "accuracy"

    def test_check_without_recorded_golden_fails(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "check", "--presets", self.PRESET,
             "--dir", str(tmp_path / "empty")],
            capsys,
        )
        assert code == 2
        assert "no golden recorded" in err

    def test_fuzz_reports_scenarios_and_writes_artifact(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "fuzz.json"
        code, out, _err = _run(
            ["validate", "fuzz", "--count", "5", "--seed", "3",
             "--report", str(report_path)],
            capsys,
        )
        assert code == 0
        assert "5 scenario(s)" in out and "OK" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True and payload["scenarios_run"] == 5


class TestErrorPaths:
    """Unknown names exit non-zero with the did-you-mean suggestion rendered."""

    def test_validate_unknown_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "record", "--presets", "churn-hevy",
             "--dir", str(tmp_path / "g")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'churn-heavy'" in err

    def test_compare_unknown_policy_suggests(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "fedavg-random,autofk", "--devices", "30",
             "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_sweep_unknown_scenario_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["sweep", "--scenario", "flet-1k", "--store", str(tmp_path / "s.jsonl")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'fleet-1k'" in err

    def test_run_unknown_workload_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--workload", "cnn-mnis", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'cnn-mnist'" in err

    def test_run_unknown_aggregator_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--aggregator", "fedprx", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'fedprox'" in err


class TestService:
    """The orchestration front-end: submit → serve --drain → status/watch/cancel."""

    @pytest.fixture
    def svc(self, tmp_path):
        return ["--root", str(tmp_path / "service")]

    @pytest.fixture
    def store(self, tmp_path):
        return ["--store", str(tmp_path / "results.sqlite")]

    def _submit(self, capsys, svc, extra):
        code, out, _err = _run(["submit", *extra, *svc], capsys)
        assert code == 0
        assert out.startswith("submitted job-")
        return out.split()[1].rstrip(":")

    def test_submit_serve_status_roundtrip(self, capsys, svc, store):
        job_id = self._submit(
            capsys, svc,
            ["--scenario", "flaky-fleet", "--devices", "25", "--rounds", "4",
             "--policy", "fedavg-random", "--priority", "3"],
        )
        code, out, _err = _run(["status", *svc], capsys)
        assert code == 0 and job_id in out and "queued" in out

        code, out, _err = _run(["serve", "--workers", "2", "--drain", *svc, *store], capsys)
        assert code == 0
        assert "job_done" in out and "scheduler_stopped" in out

        code, out, _err = _run(["status", "--json", *svc], capsys)
        payload = json.loads(out)
        assert payload["counts"]["done"] == 1
        (job,) = payload["jobs"]
        assert job["job_id"] == job_id
        assert job["state"] == "done"
        assert (job["cache_hits"], job["executed"]) == (0, 1)
        assert job["provenance"]["preset"] == "flaky-fleet"

    def test_resubmit_is_a_pure_cache_hit(self, capsys, svc, store):
        flags = ["--devices", "25", "--rounds", "4", "--policy", "fedavg-random"]
        self._submit(capsys, svc, flags)
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        job_id = self._submit(capsys, svc, flags)
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["status", job_id, *svc, *store], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["state"] == "done"
        assert (payload["cache_hits"], payload["executed"]) == (1, 0)

    def test_submit_sweep_axis_expands_grid(self, capsys, svc):
        job_id = self._submit(
            capsys, svc,
            ["--axis", "policy=fedavg-random,performance", "--devices", "25",
             "--rounds", "4"],
        )
        code, out, _err = _run(["status", job_id, *svc], capsys)
        assert code == 0
        assert len(json.loads(out)["specs"]) == 2

    def test_submit_validates_eagerly_with_suggestions(self, capsys, svc):
        code, _out, err = _run(
            ["submit", "--policy", "autofk", "--devices", "25", *svc], capsys
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_cancel_queued_job(self, capsys, svc):
        job_id = self._submit(capsys, svc, ["--devices", "25", "--rounds", "4"])
        code, out, _err = _run(["cancel", job_id, *svc], capsys)
        assert code == 0 and "cancelled" in out
        code, out, _err = _run(["status", job_id, *svc], capsys)
        assert json.loads(out)["state"] == "cancelled"

    def test_cancel_unknown_job_fails(self, capsys, svc):
        code, _out, err = _run(["cancel", "job-missing", *svc], capsys)
        assert code == 2 and "unknown job" in err

    def test_watch_replays_the_event_log(self, capsys, svc, store):
        self._submit(capsys, svc, ["--devices", "25", "--rounds", "4"])
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["watch", *svc], capsys)
        assert code == 0
        assert "job_submitted" in out and "job_done" in out

    def test_watch_without_events(self, capsys, svc):
        code, out, _err = _run(["watch", *svc], capsys)
        assert code == 0 and "no events yet" in out

    def test_failed_job_status_exits_one(self, capsys, svc, store, tmp_path):
        # A spec whose tier counts contradict the fleet size fails inside the worker.
        job_id = self._submit(
            capsys, svc, ["--devices", "25", "--rounds", "4", "--timeout", "30"]
        )
        queue_dir = tmp_path / "service" / "queue" / "queued"
        (path,) = queue_dir.glob("*.json")
        payload = json.loads(path.read_text())
        payload["specs"][0]["scenario"]["tier_counts"] = {"low": 1, "mid": 1, "high": 1}
        path.write_text(json.dumps(payload))
        _run(["serve", "--drain", "--quiet", *svc, *store], capsys)
        code, out, _err = _run(["status", job_id, *svc, *store], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["state"] == "failed"
        assert "tier_counts" in payload["error"]

    def test_submit_lane_and_weight_flow_through_status(self, capsys, svc):
        code, out, _err = _run(
            ["submit", "--devices", "25", "--rounds", "4", "--lane", "team-a",
             "--weight", "3", *svc],
            capsys,
        )
        assert code == 0
        assert "lane 'team-a' (weight 3)" in out
        code, out, _err = _run(["status", "--by-lane", *svc], capsys)
        assert code == 0
        assert "team-a" in out and "oldest_wait_s" in out
        code, out, _err = _run(["status", "--json", *svc], capsys)
        payload = json.loads(out)
        assert payload["lanes"]["team-a"]["depth"] == 1
        assert payload["lanes"]["team-a"]["weight"] == 3
        (job,) = payload["jobs"]
        assert (job["lane"], job["weight"]) == ("team-a", 3)

    def test_serve_against_a_sharded_store(self, capsys, svc, tmp_path):
        self._submit(capsys, svc, ["--devices", "25", "--rounds", "4"])
        shard_root = tmp_path / "shards"
        code, _out, _err = _run(
            ["serve", "--drain", "--quiet", "--store", str(shard_root),
             "--store-shards", "2", *svc],
            capsys,
        )
        assert code == 0
        assert (shard_root / "shards.json").exists()
        assert (shard_root / "shard-00.sqlite").exists()
        code, out, _err = _run(["status", "--by-lane", "--format", "csv", *svc], capsys)
        assert code == 0
        assert ",0,0,1,0," in out  # the submitter's lane: one job done

    def test_serve_rejects_conflicting_shard_count(self, capsys, svc, tmp_path):
        shard_root = tmp_path / "shards"
        _run(["serve", "--drain", "--quiet", "--store", str(shard_root),
              "--store-shards", "2", *svc], capsys)
        code, _out, err = _run(
            ["serve", "--drain", "--quiet", "--store", str(shard_root),
             "--store-shards", "4", *svc],
            capsys,
        )
        assert code == 2
        assert "pinned to 2" in err


class TestStoreBenchCLI:
    def test_store_suite_writes_record(self, tmp_path, capsys):
        output = tmp_path / "BENCH_store.json"
        code, out, _err = _run(
            ["bench", "--suite", "store", "--entries", "50", "--lookups", "10",
             "--output", str(output), "--warehouse", str(tmp_path / "wh")],
            capsys,
        )
        assert code == 0
        assert "sqlite" in out and "jsonl" in out
        record = json.loads(output.read_text())
        assert record["benchmark"] == "store"
        assert record["entries"] == 50


class TestSqliteStoreCLI:
    def test_run_uses_the_sqlite_store_by_default_backend(self, tmp_path, capsys):
        store = tmp_path / "results.sqlite"
        args = ["run", "--policy", "fedavg-random", "--devices", "25", "--rounds", "4",
                "--store", str(store)]
        code, out, _err = _run(args, capsys)
        assert code == 0 and "1 executed" in out
        code, out, _err = _run(args, capsys)
        assert code == 0 and "1 from cache" in out

    def test_legacy_jsonl_sibling_is_migrated_in(self, tmp_path, capsys):
        args = ["run", "--policy", "fedavg-random", "--devices", "25", "--rounds", "4"]
        code, _out, _err = _run([*args, "--store", str(tmp_path / "results.jsonl")], capsys)
        assert code == 0
        code, out, _err = _run([*args, "--store", str(tmp_path / "results.sqlite")], capsys)
        assert code == 0
        assert "1 from cache, 0 executed" in out  # served by the migrated entry


class TestOutputFormats:
    def test_compare_csv_and_json(self, capsys):
        args = ["compare", "--policies", "fedavg-random,performance", "--devices", "30",
                "--rounds", "5"]
        code, out, _err = _run([*args, "--format", "csv"], capsys)
        assert code == 0
        assert out.splitlines()[0].startswith("policy,")

        code, out, _err = _run([*args, "--format", "json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert {row["policy"] for row in payload} == {"fedavg-random", "performance"}

    def test_status_format_csv_and_json(self, tmp_path, capsys):
        svc = ["--root", str(tmp_path / "service")]
        _run(["submit", "--devices", "25", "--rounds", "4", *svc], capsys)
        code, out, _err = _run(["status", "--format", "csv", *svc], capsys)
        assert code == 0
        assert out.splitlines()[0].startswith("job,state,")

        code, out, _err = _run(["status", "--format", "json", *svc], capsys)
        assert code == 0
        (job,) = json.loads(out)
        assert job["state"] == "queued"


class TestWatchInterrupt:
    def test_follow_interrupt_exits_cleanly(self, tmp_path, capsys, monkeypatch):
        # Ctrl-C in `watch -f` must exit 0 without a traceback, not 130.
        import repro.cli as cli

        def _interrupted(path, follow=False):
            assert follow
            raise KeyboardInterrupt
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(cli, "tail_events", _interrupted)
        code, _out, _err = _run(
            ["watch", "-f", "--root", str(tmp_path / "service")], capsys
        )
        assert code == 0


class TestAnalyticsCLI:
    """The warehouse front-end: ingest -> query/report -> eval."""

    @pytest.fixture
    def wh(self, tmp_path):
        return ["--warehouse", str(tmp_path / "wh")]

    @pytest.fixture
    def ingested(self, tmp_path, capsys, wh):
        """A warehouse holding one small store ingested under the 'baseline' label."""
        store = tmp_path / "results.sqlite"
        _run(["run", "--policy", "fedavg-random", "--devices", "25", "--rounds", "4",
              "--store", str(store)], capsys)
        code, out, _err = _run(
            ["ingest", "--store", str(store), "--label", "baseline", *wh], capsys
        )
        assert code == 0
        assert "ingested 1 run row(s)" in out
        return store

    def test_ingest_requires_a_source(self, capsys, wh):
        code, _out, err = _run(["ingest", *wh], capsys)
        assert code == 2
        assert "nothing to ingest" in err

    def test_query_json_output(self, capsys, wh, ingested):
        code, out, _err = _run(
            ["query", "--table", "runs", "--group-by", "policy",
             "--metrics", "final_accuracy", "--agg", "mean,count",
             "--format", "json", *wh],
            capsys,
        )
        assert code == 0
        (group,) = json.loads(out)
        assert group["policy"] == "fedavg-random"
        assert group["final_accuracy:count"] == 1.0

    def test_query_where_filters(self, capsys, wh, ingested):
        code, out, _err = _run(
            ["query", "--where", "policy=oracle", *wh], capsys
        )
        assert code == 0
        assert "0 group(s)" in out

    def test_query_unknown_column_fails(self, capsys, wh, ingested):
        code, _out, err = _run(["query", "--where", "polarity=up", *wh], capsys)
        assert code == 2
        assert "unknown filter column" in err

    def test_report_renders_ingested_runs(self, capsys, wh, ingested):
        code, out, _err = _run(["report", "--format", "csv", *wh], capsys)
        assert code == 0
        assert out.splitlines()[0].startswith("scenario,policy,")
        assert "fedavg-random" in out

    def test_eval_identical_labels_pass(self, capsys, wh, ingested):
        code, out, _err = _run(
            ["ingest", "--store", str(ingested), "--label", "candidate", *wh], capsys
        )
        assert code == 0
        code, out, _err = _run(
            ["eval", "--baseline", "baseline", "--candidate", "candidate", *wh], capsys
        )
        assert code == 0
        assert "eval OK" in out

    def test_eval_regression_exits_one_and_writes_report(self, tmp_path, capsys, wh):
        # Two synthetic ingests with a known 2x energy regression in the candidate.
        from repro.analytics import Warehouse

        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        base = {
            "label": "baseline", "source": "store", "spec_hash": "h0", "seed": 0.0,
            "preset": "fleet-1k", "policy": "autofl", "workload": "cnn-mnist",
            "setting": "S3", "num_devices": 1000.0, "final_accuracy": 0.8,
            "rounds_executed": 20.0, "total_time_s": 100.0,
            "participant_energy_j": 1000.0, "global_energy_j": 1000.0,
        }
        warehouse.append_rows("runs", [base])
        warehouse.append_rows(
            "runs", [{**base, "label": "candidate", "global_energy_j": 2000.0}]
        )
        report_path = tmp_path / "eval-report.json"
        code, out, _err = _run(
            ["eval", "--baseline", "baseline", "--candidate", "candidate",
             "--report", str(report_path), *wh],
            capsys,
        )
        assert code == 1
        assert "eval FAILED" in out and "FAIL" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is False
        assert any(
            c["metric"] == "global_energy_j" and not c["passed"]
            for c in payload["comparisons"]
        )

    def test_eval_custom_threshold_flips_the_verdict(self, tmp_path, capsys, wh):
        from repro.analytics import Warehouse

        warehouse = Warehouse(tmp_path / "wh", backend="numpy")
        base = {
            "label": "baseline", "source": "store", "spec_hash": "h0", "seed": 0.0,
            "preset": "fleet-1k", "policy": "autofl", "total_time_s": 100.0,
        }
        warehouse.append_rows("runs", [base])
        warehouse.append_rows("runs", [{**base, "label": "candidate",
                                        "total_time_s": 104.0}])
        # 4% growth: fails the default 5%-style custom 1% gate, passes a 10% gate.
        code, _out, _err = _run(
            ["eval", "--baseline", "baseline", "--candidate", "candidate",
             "--threshold", "total_time_s=1", *wh],
            capsys,
        )
        assert code == 1
        code, _out, _err = _run(
            ["eval", "--baseline", "baseline", "--candidate", "candidate",
             "--threshold", "total_time_s=10", *wh],
            capsys,
        )
        assert code == 0

    def test_eval_unknown_baseline_label_fails(self, capsys, wh, ingested):
        code, _out, err = _run(["eval", "--baseline", "nope", *wh], capsys)
        assert code == 2
        assert "ingested labels" in err

    def test_ingest_goldens_and_query_rounds(self, capsys, wh):
        from pathlib import Path

        goldens = Path(__file__).parents[1] / "goldens"
        code, out, _err = _run(
            ["ingest", "--goldens", str(goldens), "--label", "golden", *wh], capsys
        )
        assert code == 0
        code, out, _err = _run(
            ["query", "--table", "rounds", "--group-by", "preset",
             "--metrics", "accuracy", "--agg", "count", "--format", "json", *wh],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert {group["preset"] for group in payload} == {
            "fleet-1k", "diurnal-1k", "flaky-fleet", "churn-heavy"
        }

    def test_ingest_bench_then_query_bench_shortcut(self, tmp_path, capsys, wh):
        bench = tmp_path / "BENCH_roundengine.json"
        bench.write_text(json.dumps({
            "benchmark": "roundengine",
            "timestamp": "2026-01-01T00:00:00Z",
            "provenance": {"git_sha": "abc1234"},
            "results": [{"num_devices": 100, "scalar_rounds_per_s": 5.0,
                         "batch_rounds_per_s": 50.0, "speedup": 10.0}],
        }))
        code, _out, _err = _run(["ingest", "--bench", str(bench), *wh], capsys)
        assert code == 0
        code, out, _err = _run(["query", "--bench", "--format", "json", *wh], capsys)
        assert code == 0
        (row,) = json.loads(out)
        assert row["git_sha"] == "abc1234"
        assert row["speedup:mean"] == 10.0


class TestTelemetryCLI:
    """The observability front-end: serve --telemetry, metrics, trace, ingest."""

    @pytest.fixture(autouse=True)
    def _reset_telemetry(self):
        from repro import telemetry

        telemetry.reset()
        yield
        telemetry.reset()

    @pytest.fixture
    def svc(self, tmp_path):
        return ["--root", str(tmp_path / "service")]

    @pytest.fixture
    def store(self, tmp_path):
        return ["--store", str(tmp_path / "results.sqlite")]

    def _drain_one_job(self, capsys, svc, store):
        code, _out, _err = _run(
            ["submit", "--devices", "25", "--rounds", "3",
             "--policy", "fedavg-random", *svc],
            capsys,
        )
        assert code == 0
        code, _out, _err = _run(
            ["serve", "--workers", "1", "--drain", "--quiet", "--telemetry",
             *svc, *store],
            capsys,
        )
        assert code == 0

    def test_metrics_without_any_source_fails(self, capsys, svc):
        code, _out, err = _run(["metrics", *svc], capsys)
        assert code == 1
        assert "no metrics yet" in err

    def test_serve_telemetry_then_metrics_roundtrip(self, capsys, svc, store, tmp_path):
        self._drain_one_job(capsys, svc, store)
        assert (tmp_path / "service" / "metrics.json").exists()
        code, out, _err = _run(["metrics", *svc], capsys)
        assert code == 0
        assert "repro_rounds_total" in out  # child engine metrics made it across
        assert "repro_queue_depth" in out  # live queue gauges overlay the snapshot
        code, out, _err = _run(["metrics", "--prometheus", *svc], capsys)
        assert code == 0
        assert "# TYPE repro_rounds_total counter" in out
        assert 'repro_jobs{state="done"} 1' in out

    def test_status_surfaces_queue_gauges(self, capsys, svc, store):
        self._drain_one_job(capsys, svc, store)
        code, out, _err = _run(["status", *svc], capsys)
        assert code == 0
        assert "gauges: " in out and "repro_queue_depth=0" in out
        code, out, _err = _run(["status", "--json", *svc], capsys)
        payload = json.loads(out)
        assert payload["gauges"]["repro_jobs{state=done}"] == 1.0

    def test_ingest_metrics_then_query(self, capsys, svc, store, tmp_path):
        self._drain_one_job(capsys, svc, store)
        wh = ["--warehouse", str(tmp_path / "wh"), "--backend", "numpy"]
        snapshot = tmp_path / "service" / "metrics.json"
        code, out, _err = _run(
            ["ingest", "--metrics", str(snapshot), "--label", "obs", *wh], capsys
        )
        assert code == 0
        assert "metric row(s)" in out
        code, out, _err = _run(
            ["query", "--table", "metrics", "--where", "name=repro_rounds_total",
             "--agg", "max", "--format", "json", *wh],
            capsys,
        )
        assert code == 0
        (row,) = json.loads(out)
        assert row["value:max"] == 3.0

    def test_trace_writes_chrome_trace_across_layers(self, capsys, tmp_path):
        output = tmp_path / "trace.json"
        code, out, _err = _run(
            ["trace", "--devices", "20", "--rounds", "2", "--output", str(output)],
            capsys,
        )
        assert code == 0
        assert "3 layer(s): engine, scheduler, warehouse" in out
        payload = json.loads(output.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"control_plane", "energy_math", "feedback", "execute", "ingest"} <= names

    def test_trace_converts_an_existing_span_sink(self, capsys, tmp_path):
        from repro.telemetry import SpanTracer

        sink = tmp_path / "spans.jsonl"
        tracer = SpanTracer(enabled=True)
        tracer.set_sink(sink)
        tracer.record("claim", category="scheduler", start_s=0.0, end_s=0.5)
        output = tmp_path / "trace.json"
        code, out, _err = _run(
            ["trace", "--spans", str(sink), "--output", str(output)], capsys
        )
        assert code == 0
        assert "1 span(s)" in out
        assert json.loads(output.read_text())["traceEvents"][0]["name"] == "claim"

    def test_trace_empty_sink_fails(self, capsys, tmp_path):
        sink = tmp_path / "empty.jsonl"
        sink.write_text("")
        code, _out, err = _run(["trace", "--spans", str(sink)], capsys)
        assert code == 2
        assert "no spans" in err
