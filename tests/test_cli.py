"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


def _run(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_list_policies(self, capsys):
        code, out, _err = _run(["list", "policies"], capsys)
        assert code == 0
        for name in ("fedavg-random", "power", "performance", "autofl", "ofl", "cluster-c7"):
            assert name in out

    def test_list_all_registries(self, capsys):
        code, out, _err = _run(["list"], capsys)
        assert code == 0
        assert "policies" in out and "workloads" in out and "settings" in out

    def test_unknown_registry_fails_with_suggestion(self, capsys):
        code, _out, err = _run(["list", "polices"], capsys)
        assert code == 2
        assert "did you mean 'policies'" in err


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "6",
             "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out and "accuracy" in out

    def test_unknown_policy_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--policy", "autofk", "--devices", "30", "--rounds", "5", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_run_scenario_preset_with_overrides(self, capsys):
        # flaky-fleet end to end, scaled down for speed; explicit flags beat the preset.
        code, out, _err = _run(
            ["run", "--scenario", "flaky-fleet", "--devices", "30", "--rounds", "5",
             "--policy", "fedavg-random", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_run_dynamics_flags(self, capsys):
        code, out, _err = _run(
            ["run", "--policy", "fedavg-random", "--devices", "30", "--rounds", "5",
             "--availability", "bernoulli", "--dropout-rate", "0.2", "--no-cache"],
            capsys,
        )
        assert code == 0
        assert "fedavg-random" in out

    def test_unknown_scenario_preset_fails_with_suggestion(self, capsys):
        code, _out, err = _run(
            ["run", "--scenario", "flaky-flet", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'flaky-fleet'" in err

    def test_unknown_availability_fails_early(self, capsys):
        code, _out, err = _run(
            ["run", "--availability", "diurnall", "--devices", "30", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'diurnal'" in err


class TestCompare:
    def test_compare_normalises_to_baseline(self, capsys):
        code, out, _err = _run(
            ["compare", "--policies", "fedavg-random,performance", "--devices", "30",
             "--rounds", "6"],
            capsys,
        )
        assert code == 0
        assert "PPW (global)" in out and "performance" in out

    def test_baseline_must_be_in_lineup(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "performance", "--devices", "30", "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "baseline" in err


class TestSweep:
    @pytest.fixture
    def store(self, tmp_path):
        return str(tmp_path / "results.jsonl")

    def test_grid_runs_then_rerun_serves_from_cache(self, store, capsys):
        args = [
            "sweep",
            "--axis", "policy=fedavg-random,performance",
            "--axis", "setting=S3,S4",
            "--devices", "30",
            "--rounds", "6",
            "--store", store,
            "--executor", "process",
        ]
        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 0 from cache, 4 executed" in out

        code, out, _err = _run(args, capsys)
        assert code == 0
        assert "4 grid point(s): 4 from cache, 0 executed" in out
        assert "run" not in [line.split()[-1] for line in out.splitlines() if line][1:-1]

    def test_bad_axis_fails_early(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "polcy=autofl", "--store", store], capsys
        )
        assert code == 2
        assert "unknown sweep axis" in err

    def test_duplicate_axis_rejected(self, store, capsys):
        code, _out, err = _run(
            ["sweep", "--axis", "policy=autofl", "--axis", "policy=fedavg-random",
             "--store", store],
            capsys,
        )
        assert code == 2
        assert "given twice" in err

    def test_compare_rejects_replication_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--policies", "fedavg-random", "--seeds", "5"])
        _captured = capsys.readouterr()


class TestBench:
    def test_bench_writes_record(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        code, out, _err = _run(
            ["bench", "--sizes", "30", "--repeats", "2", "--output", str(output)],
            capsys,
        )
        assert code == 0
        assert "speedup" in out
        assert output.exists()

    def test_bench_rejects_malformed_sizes(self, tmp_path, capsys):
        code, _out, err = _run(
            ["bench", "--sizes", "30,abc", "--output", str(tmp_path / "bench.json")],
            capsys,
        )
        assert code == 2
        assert "invalid --sizes" in err

    def test_list_scenarios_registry(self, capsys):
        code, out, _err = _run(["list", "scenarios"], capsys)
        assert code == 0
        assert "fleet-1k" in out and "fleet-10k" in out
        for preset in ("diurnal-1k", "flaky-fleet", "churn-heavy"):
            assert preset in out

    def test_list_availability_registry(self, capsys):
        code, out, _err = _run(["list", "availability"], capsys)
        assert code == 0
        for process in ("always-on", "bernoulli", "markov", "diurnal", "trace"):
            assert process in out


class TestValidate:
    """The validate verbs: record/check round-trips, fuzz, and their exit codes."""

    #: A preset small enough that record + check stay fast in the test suite.
    PRESET = "churn-heavy"

    def test_record_then_check_roundtrip(self, tmp_path, capsys):
        golden_dir = str(tmp_path / "goldens")
        code, out, _err = _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", golden_dir,
             "--rounds", "3"],
            capsys,
        )
        assert code == 0
        assert f"recorded golden '{self.PRESET}'" in out
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", golden_dir],
            capsys,
        )
        assert code == 0
        assert "OK (3 rounds bit-exact)" in out

    def test_check_drift_exits_one_and_writes_report(self, tmp_path, capsys):
        import json

        golden_dir = tmp_path / "goldens"
        _run(
            ["validate", "record", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--rounds", "3"],
            capsys,
        )
        path = golden_dir / f"{self.PRESET}.jsonl"
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["accuracy"] += 1e-9
        lines[1] = json.dumps(row, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")

        report_path = tmp_path / "drift.json"
        code, out, _err = _run(
            ["validate", "check", "--presets", self.PRESET, "--dir", str(golden_dir),
             "--report", str(report_path)],
            capsys,
        )
        assert code == 1
        assert "DRIFT at round 0: accuracy" in out
        payload = json.loads(report_path.read_text())
        assert payload["goldens"][0]["ok"] is False
        assert payload["goldens"][0]["divergences"][0]["field"] == "accuracy"

    def test_check_without_recorded_golden_fails(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "check", "--presets", self.PRESET,
             "--dir", str(tmp_path / "empty")],
            capsys,
        )
        assert code == 2
        assert "no golden recorded" in err

    def test_fuzz_reports_scenarios_and_writes_artifact(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "fuzz.json"
        code, out, _err = _run(
            ["validate", "fuzz", "--count", "5", "--seed", "3",
             "--report", str(report_path)],
            capsys,
        )
        assert code == 0
        assert "5 scenario(s)" in out and "OK" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True and payload["scenarios_run"] == 5


class TestErrorPaths:
    """Unknown names exit non-zero with the did-you-mean suggestion rendered."""

    def test_validate_unknown_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["validate", "record", "--presets", "churn-hevy",
             "--dir", str(tmp_path / "g")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'churn-heavy'" in err

    def test_compare_unknown_policy_suggests(self, capsys):
        code, _out, err = _run(
            ["compare", "--policies", "fedavg-random,autofk", "--devices", "30",
             "--rounds", "5"],
            capsys,
        )
        assert code == 2
        assert "did you mean 'autofl'" in err

    def test_sweep_unknown_scenario_preset_suggests(self, tmp_path, capsys):
        code, _out, err = _run(
            ["sweep", "--scenario", "flet-1k", "--store", str(tmp_path / "s.jsonl")],
            capsys,
        )
        assert code == 2
        assert "did you mean 'fleet-1k'" in err

    def test_run_unknown_workload_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--workload", "cnn-mnis", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'cnn-mnist'" in err

    def test_run_unknown_aggregator_suggests(self, capsys):
        code, _out, err = _run(
            ["run", "--aggregator", "fedprx", "--devices", "30", "--no-cache"], capsys
        )
        assert code == 2
        assert "did you mean 'fedprox'" in err
