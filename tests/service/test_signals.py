"""Tests for graceful drain: SIGTERM/SIGINT handling, grace windows and refunds."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ServiceError
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EventLog
from repro.service.jobs import JobState, make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec

SRC = Path(__file__).resolve().parents[2] / "src"

#: A spec that keeps running until told to stop (convergence exit disabled).
_ENDLESS = dict(num_devices=200, max_rounds=100_000)


def _spec(rounds=3, seed=0, endless=False):
    scenario = (
        ScenarioSpec(seed=seed, **_ENDLESS)
        if endless
        else ScenarioSpec(num_devices=25, max_rounds=rounds, seed=seed)
    )
    return ExperimentSpec(
        scenario=scenario, policy="fedavg-random", stop_at_convergence=not endless
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def events(tmp_path):
    return EventLog(tmp_path / "events.jsonl")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "results.sqlite")


_SERVE_SCRIPT = """
import sys
from repro.experiments.spec import ExperimentSpec
from repro.service import ArtifactStore, EventLog, JobQueue, Scheduler, make_job
from repro.sim.scenarios import ScenarioSpec

root = sys.argv[1]
queue = JobQueue(root + "/queue")
spec = ExperimentSpec(
    scenario=ScenarioSpec(num_devices=200, max_rounds=100_000),
    policy="fedavg-random",
    stop_at_convergence=False,
)
queue.submit(make_job(spec))
scheduler = Scheduler(
    queue,
    ArtifactStore(root + "/results.sqlite"),
    EventLog(root + "/events.jsonl"),
    poll_s=0.05,
    lease_s=5.0,
    drain_grace_s=0.2,
)
scheduler.serve(workers=1)
"""


class TestSigtermDrain:
    def test_sigterm_drains_and_requeues_without_spending_a_retry(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        process = subprocess.Popen(
            [sys.executable, "-c", _SERVE_SCRIPT, str(tmp_path)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            queue = JobQueue(tmp_path / "queue")
            deadline = time.time() + 60
            while time.time() < deadline and queue.counts()["running"] == 0:
                time.sleep(0.1)
            assert queue.counts()["running"] == 1, "serve never claimed the job"
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0  # a drain is a clean exit, not a crash
        (job,) = queue.jobs()
        assert job.state is JobState.QUEUED
        assert job.attempts == 0  # the interrupted attempt was refunded
        names = [
            json.loads(line)["event"]
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert "drain_requested" in names
        assert "job_requeued" in names
        stopped = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
            if json.loads(line)["event"] == "scheduler_stopped"
        ]
        assert stopped[-1]["reason"] == "drained-on-signal"


class TestGracefulDrainInProcess:
    def test_stop_within_grace_lets_the_inflight_point_finish(
        self, queue, store, events
    ):
        # The drain contract: a stop with a generous grace does NOT kill the child;
        # the in-flight grid point runs to completion and reports ok.
        scheduler = Scheduler(
            queue, store, events, poll_s=0.02, drain_grace_s=60.0, worker_prefix="t"
        )
        job = make_job(_spec())
        queue.submit(job)
        claimed = queue.claim("t-w0")
        stop = threading.Event()
        stop.set()  # drain requested before the spec even starts
        outcome = scheduler._run_spec_in_child(
            {"spec": _spec().to_dict(), "validate": False},
            claimed,
            "t-w0",
            None,
            stop,
        )
        assert outcome["ok"] is True

    def test_force_stop_terminates_the_inflight_point(self, queue, store, events):
        scheduler = Scheduler(
            queue, store, events, poll_s=0.02, drain_grace_s=60.0, worker_prefix="t"
        )
        job = make_job(_spec(endless=True))
        queue.submit(job)
        claimed = queue.claim("t-w0")
        stop = threading.Event()
        stop.set()
        scheduler._force_stop.set()  # the second signal: no grace, terminate now
        started = time.time()
        outcome = scheduler._run_spec_in_child(
            {"spec": _spec(endless=True).to_dict(), "validate": False},
            claimed,
            "t-w0",
            None,
            stop,
        )
        assert outcome == {"ok": False, "interrupted": "stopped"}
        assert time.time() - started < 30  # terminated, not drained for the grace

    def test_grace_deadline_terminates_a_long_point(self, queue, store, events):
        scheduler = Scheduler(
            queue, store, events, poll_s=0.02, drain_grace_s=0.2, worker_prefix="t"
        )
        job = make_job(_spec(endless=True))
        queue.submit(job)
        claimed = queue.claim("t-w0")
        stop = threading.Event()
        stop.set()
        outcome = scheduler._run_spec_in_child(
            {"spec": _spec(endless=True).to_dict(), "validate": False},
            claimed,
            "t-w0",
            None,
            stop,
        )
        assert outcome == {"ok": False, "interrupted": "stopped"}

    def test_drain_grace_must_be_non_negative(self, queue, store, events):
        with pytest.raises(ServiceError, match="drain_grace_s"):
            Scheduler(queue, store, events, drain_grace_s=-1.0)

    def test_serve_off_the_main_thread_skips_signal_handlers(self, queue, store, events):
        # Signal handlers can only be installed on the main thread; serve() must
        # degrade gracefully instead of crashing when embedded in one.
        scheduler = Scheduler(queue, store, events, poll_s=0.02, worker_prefix="t")
        errors: list[BaseException] = []

        def run():
            try:
                scheduler.serve(workers=1, drain=True)
            except BaseException as exc:  # pragma: no cover - the failure under test
                errors.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert errors == []
