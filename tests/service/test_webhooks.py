"""Tests for webhooks: registry, HMAC signatures, delivery, retry and dead-letter."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exceptions import WebhookError
from repro.service.events import EventLog
from repro.service.webhooks import (
    SIGNATURE_HEADER,
    Webhook,
    WebhookDispatcher,
    WebhookRegistry,
    deliver_once,
    sign_payload,
    verify_signature,
)


class _Receiver:
    """Local HTTP endpoint capturing every delivery (body + headers)."""

    def __init__(self, fail_first: int = 0):
        self.deliveries = []
        self.fail_remaining = fail_first
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                body = self.rfile.read(int(self.headers.get("Content-Length", 0)))
                if outer.fail_remaining > 0:
                    outer.fail_remaining -= 1
                    self.send_response(503)
                    self.end_headers()
                    return
                outer.deliveries.append((body, dict(self.headers)))
                self.send_response(200)
                self.end_headers()

            def log_message(self, *args):
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._server.daemon_threads = True
        self.url = f"http://127.0.0.1:{self._server.server_address[1]}/hook"
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def close(self):
        self._server.shutdown()
        self._server.server_close()


@pytest.fixture
def receiver():
    receiver = _Receiver()
    yield receiver
    receiver.close()


@pytest.fixture
def registry(tmp_path):
    return WebhookRegistry(tmp_path)


@pytest.fixture
def log(tmp_path):
    return EventLog(tmp_path / "events.jsonl")


def _dispatcher(tmp_path, **kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("retry_budget", 3)
    return WebhookDispatcher(tmp_path, **kwargs)


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        signature = sign_payload("secret", b'{"event":"x"}')
        assert signature.startswith("sha256=")
        assert verify_signature("secret", b'{"event":"x"}', signature)
        assert not verify_signature("other", b'{"event":"x"}', signature)
        assert not verify_signature("secret", b'{"event":"y"}', signature)
        assert not verify_signature("secret", b'{"event":"x"}', "")

    def test_known_vector(self):
        # Pinned so receivers implemented in other languages can test against it.
        assert sign_payload("k", b"body") == (
            "sha256=c6d811ef3aeb02437cd423f1abe13209041864630bdc4e2c04def5c7b0031a23"
        )


class TestRegistry:
    def test_add_list_remove_roundtrip(self, registry, log):
        log.emit("historic")
        hook = registry.add("http://example.test/hook", events=("job_done",))
        assert hook.hook_id.startswith("wh-")
        assert hook.secret
        assert hook.from_cursor == 1  # Only events after registration deliver.
        loaded = registry.load()
        assert [h.hook_id for h in loaded] == [hook.hook_id]
        assert loaded[0].events == ("job_done",)
        removed = registry.remove(hook.hook_id)
        assert removed.hook_id == hook.hook_id
        assert registry.load() == []

    def test_add_rejects_non_http_urls(self, registry):
        with pytest.raises(WebhookError):
            registry.add("ftp://example.test/hook")
        with pytest.raises(WebhookError):
            registry.add("not a url")

    def test_remove_unknown_hook_raises(self, registry):
        with pytest.raises(WebhookError):
            registry.remove("wh-missing")

    def test_webhook_events_never_match_hooks(self):
        hook = Webhook(hook_id="wh-1", url="http://x/h", secret="s")
        assert hook.matches({"event": "job_done"})
        assert not hook.matches({"event": "webhook_test"})
        assert not hook.matches({"event": "webhook_added"})

    def test_event_filter(self):
        hook = Webhook(hook_id="wh-1", url="http://x/h", secret="s", events=("job_done",))
        assert hook.matches({"event": "job_done"})
        assert not hook.matches({"event": "job_started"})


class TestDelivery:
    def test_deliver_once_signs_the_body(self, receiver):
        hook = Webhook(hook_id="wh-1", url=receiver.url, secret="s3cr3t")
        payload = {"event": "job_done", "job_id": "job-1", "cursor": 7}
        assert deliver_once(hook, payload) == 200
        body, headers = receiver.deliveries[0]
        assert json.loads(body) == payload
        assert verify_signature("s3cr3t", body, headers[SIGNATURE_HEADER])
        assert headers["X-Repro-Event"] == "job_done"
        assert headers["X-Repro-Cursor"] == "7"
        assert headers["X-Repro-Delivery"] == "wh-1"

    def test_deliver_once_raises_on_http_error(self):
        failing = _Receiver(fail_first=1)
        try:
            hook = Webhook(hook_id="wh-1", url=failing.url, secret="s")
            with pytest.raises(WebhookError):
                deliver_once(hook, {"event": "x"})
        finally:
            failing.close()

    def test_deliver_once_raises_on_unreachable_endpoint(self):
        hook = Webhook(hook_id="wh-1", url="http://127.0.0.1:9/hook", secret="s")
        with pytest.raises(WebhookError):
            deliver_once(hook, {"event": "x"}, timeout_s=0.5)


class TestDispatcher:
    def test_delivers_matching_events_once(self, tmp_path, registry, log, receiver):
        registry.add(receiver.url, events=("job_done",), secret="s")
        log.emit("job_started", job_id="job-1")
        log.emit("job_done", job_id="job-1")
        dispatcher = _dispatcher(tmp_path)
        assert dispatcher.run_pending() == 1
        assert dispatcher.run_pending() == 0  # Cursor advanced: no redelivery.
        body, headers = receiver.deliveries[0]
        payload = json.loads(body)
        assert payload["event"] == "job_done" and payload["cursor"] == 2
        assert verify_signature("s", body, headers[SIGNATURE_HEADER])

    def test_retries_with_backoff_then_succeeds(self, tmp_path, registry, log):
        flaky = _Receiver(fail_first=2)
        try:
            registry.add(flaky.url, secret="s")
            log.emit("job_done", job_id="job-1")
            dispatcher = _dispatcher(tmp_path)
            assert dispatcher.run_pending() == 1
            assert len(flaky.deliveries) == 1  # Two 503s, then the retry landed.
        finally:
            flaky.close()

    def test_dead_letters_after_budget_and_moves_on(self, tmp_path, registry, log, receiver):
        hook = registry.add("http://127.0.0.1:9/hook", secret="s")  # Unreachable.
        log.emit("job_done", job_id="job-1")
        dispatcher = _dispatcher(tmp_path, retry_budget=2, timeout_s=0.5)
        dispatcher.run_pending()
        letters = [
            json.loads(line)
            for line in registry.deadletter_path.read_text().splitlines()
        ]
        assert len(letters) == 1
        assert letters[0]["hook_id"] == hook.hook_id
        assert letters[0]["attempts"] == 2
        assert letters[0]["event"]["event"] == "job_done"
        # The cursor advanced past the dead-lettered event: the feed is not dammed.
        assert registry.cursor_of(registry.get(hook.hook_id)) == 1
        assert dispatcher.run_pending() == 0

    def test_at_least_once_across_dispatcher_restarts(self, tmp_path, registry, log, receiver):
        registry.add(receiver.url, secret="s")
        log.emit("job_done", job_id="job-1")
        _dispatcher(tmp_path).run_pending()
        log.emit("job_done", job_id="job-2")
        _dispatcher(tmp_path).run_pending()  # Fresh instance resumes at the cursor.
        jobs = [json.loads(body)["job_id"] for body, _ in receiver.deliveries]
        assert jobs == ["job-1", "job-2"]

    def test_only_events_after_registration_deliver(self, tmp_path, registry, log, receiver):
        log.emit("job_done", job_id="job-old")
        registry.add(receiver.url, secret="s")
        log.emit("job_done", job_id="job-new")
        _dispatcher(tmp_path).run_pending()
        jobs = [json.loads(body)["job_id"] for body, _ in receiver.deliveries]
        assert jobs == ["job-new"]

    def test_background_thread_delivers_and_close_flushes(self, tmp_path, registry, log, receiver):
        registry.add(receiver.url, secret="s")
        dispatcher = _dispatcher(tmp_path, poll_s=0.05).start()
        log.emit("job_done", job_id="job-1")
        for _ in range(100):
            if receiver.deliveries:
                break
            threading.Event().wait(0.05)
        log.emit("job_done", job_id="job-2")
        dispatcher.close()  # Final flush delivers anything already in the log.
        jobs = [json.loads(body)["job_id"] for body, _ in receiver.deliveries]
        assert jobs == ["job-1", "job-2"]


class TestWebhooksCLI:
    def test_add_list_test_rm(self, tmp_path, receiver, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["webhooks", "add", receiver.url, "--secret", "cli-secret"]) == 0
        out = capsys.readouterr().out
        assert "secret: cli-secret" in out
        hook_id = out.split()[1]
        assert main(["webhooks", "list"]) == 0
        assert hook_id in capsys.readouterr().out
        assert main(["webhooks", "test", hook_id]) == 0
        assert "HTTP 200" in capsys.readouterr().out
        body, headers = receiver.deliveries[0]
        assert json.loads(body)["event"] == "webhook_test"
        assert verify_signature("cli-secret", body, headers[SIGNATURE_HEADER])
        assert main(["webhooks", "rm", hook_id]) == 0
        assert main(["webhooks", "list"]) == 0
        assert "no webhooks registered" in capsys.readouterr().out
