"""Tests for the sharded SQLite store and multi-host scheduling against it."""

import multiprocessing

import pytest

from repro.exceptions import ServiceError
from repro.experiments.runner import ResultStore, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EventLog
from repro.service.jobs import JobState, make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore, ShardedStore, migrate_jsonl, open_store
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=3, seed=seed), policy="fedavg-random"
    )


def _result(seed=0):
    return run_experiment(_spec(seed))


class TestSharding:
    def test_results_round_trip_and_spread_over_shards(self, tmp_path):
        store = ShardedStore(tmp_path / "store", shards=4)
        results = [_result(seed) for seed in range(6)]
        for result in results:
            store.put(result)
        assert len(store) == 6
        for result in results:
            got = store.get(result.spec)
            assert got is not None and got.cached
            assert result.spec in store
        assert sum(len(shard) for shard in store.shards) == 6
        assert len({id(store._shard_for(r.spec.spec_hash())) for r in results}) > 1

    def test_routing_is_deterministic_across_instances(self, tmp_path):
        first = ShardedStore(tmp_path / "store", shards=4)
        result = _result()
        first.put(result)
        second = ShardedStore(tmp_path / "store")  # shard count from the manifest
        assert second.n_shards == 4
        assert second.get(result.spec) is not None

    def test_manifest_pins_the_shard_count(self, tmp_path):
        ShardedStore(tmp_path / "store", shards=2)
        with pytest.raises(ServiceError, match="pinned to 2"):
            ShardedStore(tmp_path / "store", shards=8)

    def test_shard_count_must_be_positive(self, tmp_path):
        with pytest.raises(ServiceError, match="shards"):
            ShardedStore(tmp_path / "store", shards=0)

    def test_artifacts_route_by_job_id(self, tmp_path):
        store = ShardedStore(tmp_path / "store", shards=3)
        store.put_artifact("job-abc", "report", "validation-report", {"ok": False})
        (artifact,) = store.get_artifacts("job-abc")
        assert artifact["kind"] == "validation-report"
        assert ShardedStore(tmp_path / "store").get_artifacts("job-abc")

    def test_meta_lives_on_shard_zero(self, tmp_path):
        store = ShardedStore(tmp_path / "store", shards=2)
        store.set_meta("marker", "42")
        assert store.get_meta("marker") == "42"
        assert store.shards[0].get_meta("marker") == "42"

    def test_iter_results_and_count_by_schema_aggregate(self, tmp_path):
        store = ShardedStore(tmp_path / "store", shards=2)
        for seed in range(4):
            store.put(_result(seed), preset="p")
        drained = list(store.iter_results())
        assert len(drained) == 4
        assert all(preset == "p" for _result_, preset in drained)
        assert sum(store.count_by_schema().values()) == 4

    def test_migrate_jsonl_into_sharded_store(self, tmp_path):
        legacy = ResultStore(tmp_path / "legacy.jsonl")
        for seed in range(3):
            legacy.put(_result(seed))
        store = ShardedStore(tmp_path / "store", shards=2)
        assert migrate_jsonl(tmp_path / "legacy.jsonl", store) == 3
        assert len(store) == 3


class TestOpenStoreDispatch:
    def test_shards_flag_creates_a_sharded_store(self, tmp_path):
        store = open_store(tmp_path / "store", shards=2)
        assert isinstance(store, ShardedStore)
        assert store.n_shards == 2

    def test_manifest_directory_is_autodetected(self, tmp_path):
        ShardedStore(tmp_path / "store", shards=2)
        store = open_store(tmp_path / "store")  # no flag needed on reopen
        assert isinstance(store, ShardedStore)
        assert store.n_shards == 2

    def test_plain_path_stays_a_single_file_store(self, tmp_path):
        assert isinstance(open_store(tmp_path / "results.sqlite"), ArtifactStore)

    def test_jsonl_cannot_be_sharded(self, tmp_path):
        with pytest.raises(ServiceError, match="jsonl"):
            open_store(tmp_path / "results.jsonl", shards=2)


def _serve_one_host(root: str, host: str) -> None:
    """A 'host': its own queue handle, scheduler and shard connections."""
    queue = JobQueue(f"{root}/queue")
    store = ShardedStore(f"{root}/store")
    events = EventLog(f"{root}/events-{host}.jsonl")
    scheduler = Scheduler(queue, store, events, poll_s=0.02, worker_prefix=host)
    scheduler.serve(workers=2, drain=True, install_signals=False)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the two-host drain forks serve processes from the test",
)
class TestTwoHostDrain:
    def test_two_serve_processes_drain_one_store_without_double_execution(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        ShardedStore(tmp_path / "store", shards=4)  # pin the manifest up front
        flood_ids = [
            queue.submit(make_job(_spec(seed), lane="flood")) for seed in range(8)
        ]
        solo_id = queue.submit(make_job(_spec(100), lane="solo"))
        context = multiprocessing.get_context("fork")
        hosts = [
            context.Process(target=_serve_one_host, args=(str(tmp_path), f"host{index}"))
            for index in range(2)
        ]
        for host in hosts:
            host.start()
        for host in hosts:
            host.join(timeout=120)
            assert host.exitcode == 0
        for job_id in [*flood_ids, solo_id]:
            job = queue.get(job_id)
            assert job.state is JobState.DONE
            assert job.attempts == 1  # claimed exactly once across both hosts
            assert (job.cache_hits, job.executed) in {(0, 1), (1, 0)}
        assert len(ShardedStore(tmp_path / "store")) == 9
        # Lane fairness across hosts: every claimer round-robins lanes on its own
        # credit, so whichever host served the solo job did so within its first two
        # claims — the 8-job flood never pushed it back.
        for index in range(2):
            log = EventLog(tmp_path / f"events-host{index}.jsonl")
            started = [
                event["job_id"] for event in log.read() if event["event"] == "job_started"
            ]
            if solo_id in started:
                assert solo_id in started[:2]
                break
        else:
            pytest.fail("the solo job never started on either host")
