"""Concurrent-access tests: same-hash writers, claim races and parallel migration.

These run real child processes (not threads) against one store/queue directory — the
exact topology of several ``repro serve`` worker pools sharing a cache — and assert
the two promises the service makes: the store never corrupts, and no job ever runs
twice.
"""

import json
import multiprocessing

import pytest

from repro.experiments.runner import ResultStore, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EventLog
from repro.service.jobs import JobState, make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore, open_store
from repro.sim.scenarios import ScenarioSpec

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="these tests fork in-test worker functions into real processes",
)


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=seed), policy="fedavg-random"
    )


def _run_procs(targets_and_args):
    processes = [
        multiprocessing.Process(target=target, args=args) for target, args in targets_and_args
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    assert all(process.exitcode == 0 for process in processes)


class TestSameHashWriters:
    def test_two_processes_writing_the_same_spec_hash(self, tmp_path):
        path = tmp_path / "results.sqlite"
        result = run_experiment(_spec())
        barrier = multiprocessing.Barrier(2)

        def hammer(repeats):
            store = ArtifactStore(path)
            barrier.wait()  # maximise overlap
            for _ in range(repeats):
                store.put(result)

        _run_procs([(hammer, (25,)), (hammer, (25,))])
        store = ArtifactStore(path)
        assert len(store) == 1  # one row, not fifty
        hit = store.get(_spec())
        assert hit is not None and hit.summaries == result.summaries


class TestClaimLease:
    def test_racing_workers_never_double_claim(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        ids = [queue.submit(make_job(_spec(seed))) for seed in range(10)]
        claims_log = tmp_path / "claims"
        claims_log.mkdir()
        barrier = multiprocessing.Barrier(3)

        def grab(worker_id):
            queue = JobQueue(tmp_path / "queue")
            barrier.wait()
            while True:
                job = queue.claim(worker_id)
                if job is None:
                    return
                # Record the claim, then complete so the drain terminates.
                (claims_log / f"{job.job_id}-{worker_id}").touch()
                queue.complete(job, JobState.DONE)

        _run_procs([(grab, (f"w{n}",)) for n in range(3)])
        claimed = [entry.name.rsplit("-", 1)[0] for entry in claims_log.iterdir()]
        assert sorted(claimed) == sorted(ids)  # every job claimed exactly once

    def test_two_scheduler_pools_run_each_job_exactly_once(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        ids = [queue.submit(make_job(_spec(seed))) for seed in range(6)]
        store_path = tmp_path / "results.sqlite"
        ArtifactStore(store_path)  # pre-create so both pools open the same schema

        def pool(tag):
            scheduler = Scheduler(
                queue=JobQueue(tmp_path / "queue"),
                store=ArtifactStore(store_path),
                events=EventLog(tmp_path / "events.jsonl"),
                poll_s=0.05,
                worker_prefix=tag,
            )
            scheduler.serve(workers=2, drain=True)

        _run_procs([(pool, ("p0",)), (pool, ("p1",))])
        for job_id in ids:
            job = queue.get(job_id)
            assert job.state is JobState.DONE
            assert job.attempts == 1  # claimed by exactly one worker across both pools
        assert len(ArtifactStore(store_path)) == 6


class TestParallelMigration:
    def test_concurrent_jsonl_migration_neither_corrupts_nor_duplicates(self, tmp_path):
        legacy_path = tmp_path / "results.jsonl"
        legacy = ResultStore(legacy_path)
        results = [run_experiment(_spec(seed)) for seed in range(4)]
        for result in results:
            legacy.put(result)
        sqlite_path = tmp_path / "results.sqlite"
        barrier = multiprocessing.Barrier(2)

        def migrate():
            barrier.wait()
            store = open_store(sqlite_path)
            assert len(store) == 4

        _run_procs([(migrate, ()), (migrate, ())])
        store = ArtifactStore(sqlite_path)
        assert len(store) == 4
        for result in results:
            hit = store.get(result.spec.spec_hash())
            assert hit is not None and hit.summaries == result.summaries
        # The receipt is informational: concurrent migrators may split the copy
        # between them (per-entry dedup), so any partial count is legitimate — the
        # correctness claim is the store content above, not who copied what.
        receipt = store.get_meta("migrated:results.jsonl")
        assert 0 <= json.loads(receipt)["migrated"] <= 4
