"""Tests for fair lanes: SWRR claim order, flood isolation, depths and gauges."""

import pytest

from repro import telemetry
from repro.exceptions import ServiceError
from repro.experiments.spec import ExperimentSpec
from repro.service.jobs import Job, derive_lane, hash_lane, make_job
from repro.service.queue import JobQueue
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=seed), policy="fedavg-random"
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


class TestLaneModel:
    def test_default_lane_is_derived_from_submitter(self):
        job = make_job(_spec())
        assert job.lane == derive_lane(job.provenance)
        assert job.lane.startswith("lane-")

    def test_explicit_lane_and_weight_survive_round_trip(self):
        job = make_job(_spec(), lane="team-a", weight=3)
        clone = Job.from_dict(job.to_dict())
        assert (clone.lane, clone.weight) == ("team-a", 3)

    def test_hash_lane_is_stable(self):
        assert hash_lane("alice@host") == hash_lane("alice@host")
        assert hash_lane("alice@host") != hash_lane("bob@host")

    def test_weight_must_be_positive(self):
        with pytest.raises(ServiceError, match="weight"):
            make_job(_spec(), weight=0)

    def test_v1_payload_reads_with_default_lane(self):
        payload = make_job(_spec()).to_dict()
        payload["schema"] = 1
        del payload["lane"]
        del payload["weight"]
        job = Job.from_dict(payload)
        assert job.weight == 1
        assert job.lane == derive_lane(job.provenance)


class TestFairClaiming:
    def test_flood_cannot_starve_a_light_lane(self, queue):
        # THE fairness contract: 100 queued jobs in one lane must not delay another
        # lane's single job beyond its weight share.  With equal weights, round-robin
        # means the light lane's job is handed out within the first two claims.
        for seed in range(100):
            queue.submit(make_job(_spec(seed), lane="flood"))
        solo = queue.submit(make_job(_spec(1000), lane="solo"))
        first_two = [queue.claim("w0").job_id for _ in range(2)]
        assert solo in first_two

    def test_weighted_lanes_interleave_in_proportion(self, queue):
        for seed in range(8):
            queue.submit(make_job(_spec(seed), lane="heavy", weight=3))
        for seed in range(8, 16):
            queue.submit(make_job(_spec(seed), lane="light", weight=1))
        lanes = [queue.claim("w0").lane for _ in range(8)]
        # SWRR with weights 3:1 serves exactly 3 heavy claims per light claim in
        # every window of 4 — the flood share is bounded, not just "eventually fair".
        assert lanes.count("heavy") == 6 and lanes.count("light") == 2
        assert lanes[:4].count("heavy") == 3 and lanes[:4].count("light") == 1

    def test_priority_then_fifo_within_a_lane(self, queue):
        low = queue.submit(make_job(_spec(0), lane="a", priority=0))
        high = queue.submit(make_job(_spec(1), lane="a", priority=5))
        low2 = queue.submit(make_job(_spec(2), lane="a", priority=0))
        order = [queue.claim("w0").job_id for _ in range(3)]
        assert order == [high, low, low2]

    def test_drained_lane_restarts_without_hoarded_credit(self, queue):
        queue.submit(make_job(_spec(0), lane="a"))
        assert queue.claim("w0").lane == "a"
        assert queue.claim("w0") is None  # lane drained; its credit is dropped
        for seed in range(4):
            queue.submit(make_job(_spec(10 + seed), lane="b"))
        queue.submit(make_job(_spec(20), lane="a"))
        lanes = [queue.claim("w0").lane for _ in range(3)]
        # "a" returns as a fresh lane and is served within the round-robin share,
        # but never gets a multi-claim burst from credit hoarded while empty.
        assert "a" in lanes
        assert lanes.count("a") == 1

    def test_fairness_holds_across_queue_instances(self, queue, tmp_path):
        # A second worker process has its own credit state yet converges to the
        # same shares — fairness needs no cross-process coordination.
        for seed in range(50):
            queue.submit(make_job(_spec(seed), lane="flood"))
        solo = queue.submit(make_job(_spec(1000), lane="solo"))
        other = JobQueue(tmp_path / "queue")
        first_two = [other.claim("w-other").job_id for _ in range(2)]
        assert solo in first_two


class TestLaneIntrospection:
    def test_lane_depths_reports_depth_weight_and_wait(self, queue):
        for seed in range(3):
            queue.submit(make_job(_spec(seed), lane="a", weight=2))
        queue.submit(make_job(_spec(9), lane="b"))
        depths = queue.lane_depths()
        assert depths["a"]["depth"] == 3
        assert depths["a"]["weight"] == 2
        assert depths["b"]["depth"] == 1
        assert depths["a"]["oldest_wait_s"] >= 0.0

    def test_gauges_export_per_lane_series(self, queue):
        queue.submit(make_job(_spec(0), lane="a"))
        registry = telemetry.MetricsRegistry(enabled=True)
        queue.export_gauges(registry)
        series = {
            (entry["name"], entry["labels"].get("lane")): entry["value"]
            for entry in registry.snapshot()
        }
        assert series[("repro_lane_depth", "a")] == 1.0
        assert ("repro_lane_oldest_wait_s", "a") in series

    def test_drained_lane_is_zeroed_not_dropped(self, queue):
        queue.submit(make_job(_spec(0), lane="a"))
        registry = telemetry.MetricsRegistry(enabled=True)
        queue.export_gauges(registry)
        queue.claim("w0")
        queue.export_gauges(registry)
        series = {
            (entry["name"], entry["labels"].get("lane")): entry["value"]
            for entry in registry.snapshot()
        }
        # Dashboards must see the lane hit zero, not a vanishing series.
        assert series[("repro_lane_depth", "a")] == 0.0
