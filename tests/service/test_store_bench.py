"""Tests for the store benchmark behind ``python -m repro bench --suite store``."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.service.bench import format_store_bench, run_store_bench
from repro.sim.bench import bench_provenance


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    output = tmp_path_factory.mktemp("bench") / "BENCH_store.json"
    return run_store_bench(entries=200, lookups=50, output=output), output


class TestRecord:
    def test_measures_both_backends(self, record):
        payload, _output = record
        for backend in ("jsonl", "sqlite"):
            row = payload["results"][backend]
            assert row["entries"] == 200
            assert row["inserts_per_s"] > 0
            assert row["lookups_per_s"] > 0
            assert row["cold_open_s"] > 0
            assert 0 < row["lookup_hits"] <= 50

    def test_speedup_ratios_present(self, record):
        payload, _output = record
        assert set(payload["results"]["speedup"]) == {"inserts", "lookups", "cold_open"}

    def test_provenance_matches_the_roundengine_record_fields(self, record):
        # The two trajectory files must stay machine-comparable: same provenance keys.
        payload, _output = record
        assert set(payload["provenance"]) == set(bench_provenance())
        assert payload["benchmark"] == "store"

    def test_record_written_to_disk(self, record):
        payload, output = record
        on_disk = json.loads(output.read_text())
        assert on_disk["entries"] == payload["entries"]
        assert on_disk["results"]["sqlite"]["entries"] == 200

    def test_format_renders_both_backends(self, record):
        payload, _output = record
        text = format_store_bench(payload)
        assert "jsonl" in text and "sqlite" in text and "cold open" in text


class TestValidation:
    def test_rejects_empty_bench(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least one entry"):
            run_store_bench(entries=0, output=tmp_path / "x.json")

    def test_rejects_too_few_lookups(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lookups"):
            run_store_bench(entries=5, lookups=1, output=tmp_path / "x.json")

    def test_no_output_skips_writing(self, tmp_path):
        record = run_store_bench(entries=10, lookups=4, output=None)
        assert record["results"]["sqlite"]["entries"] == 10
