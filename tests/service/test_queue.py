"""Tests for the on-disk job queue: priority order, claims, leases and cancellation."""

import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.experiments.spec import ExperimentSpec
from repro.service.jobs import JobState, make_job
from repro.service.queue import CLAIM_GRACE_S, JobQueue
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=seed), policy="fedavg-random"
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


class TestSubmitAndClaim:
    def test_empty_queue_claims_nothing(self, queue):
        assert queue.claim("w0") is None

    def test_claim_marks_running_and_leases(self, queue):
        job_id = queue.submit(make_job(_spec()))
        claimed = queue.claim("w0", lease_s=30.0)
        assert claimed.job_id == job_id
        assert claimed.state is JobState.RUNNING
        assert claimed.worker == "w0"
        assert claimed.attempts == 1
        assert queue.pending() == 0

    def test_priority_order_then_fifo(self, queue):
        low = queue.submit(make_job(_spec(0), priority=0))
        high = queue.submit(make_job(_spec(1), priority=5))
        low2 = queue.submit(make_job(_spec(2), priority=0))
        order = [queue.claim("w0").job_id for _ in range(3)]
        assert order == [high, low, low2]

    def test_claimed_job_cannot_be_claimed_again(self, queue):
        queue.submit(make_job(_spec()))
        assert queue.claim("w0") is not None
        assert queue.claim("w1") is None

    def test_concurrent_claims_hand_out_each_job_once(self, queue):
        ids = {queue.submit(make_job(_spec(seed))) for seed in range(8)}
        claimed: list[str] = []
        lock = threading.Lock()

        def grab():
            while True:
                job = queue.claim("w")
                if job is None:
                    return
                with lock:
                    claimed.append(job.job_id)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(ids)  # every job exactly once

    def test_only_queued_jobs_can_be_submitted(self, queue):
        job = make_job(_spec())
        job.transition(JobState.RUNNING)
        with pytest.raises(ServiceError, match="only queued"):
            queue.submit(job)


class TestCompletion:
    def test_complete_moves_to_terminal_dir(self, queue):
        queue.submit(make_job(_spec()))
        job = queue.claim("w0")
        queue.complete(job, JobState.DONE)
        assert queue.get(job.job_id).state is JobState.DONE
        assert queue.counts()["done"] == 1
        assert queue.counts()["running"] == 0

    def test_complete_requires_terminal_state(self, queue):
        queue.submit(make_job(_spec()))
        job = queue.claim("w0")
        with pytest.raises(ServiceError, match="terminal"):
            queue.complete(job, JobState.QUEUED)

    def test_requeue_returns_job_to_queue(self, queue):
        queue.submit(make_job(_spec(), retry_budget=1))
        job = queue.claim("w0")
        queue.requeue(job)
        assert queue.pending() == 1
        again = queue.claim("w1")
        assert again.job_id == job.job_id
        assert again.attempts == 2

    def test_requeue_without_consuming_attempt(self, queue):
        queue.submit(make_job(_spec()))
        job = queue.claim("w0")
        queue.requeue(job, consume_attempt=False)
        assert queue.claim("w1").attempts == 1  # the interrupted attempt was refunded


class TestLeases:
    def test_live_lease_is_not_released(self, queue):
        queue.submit(make_job(_spec()))
        queue.claim("w0", lease_s=60.0)
        assert queue.release_expired() == []

    def test_expired_lease_requeues_within_budget(self, queue):
        queue.submit(make_job(_spec(), retry_budget=1))
        job = queue.claim("w0", lease_s=0.0)
        released = queue.release_expired()
        assert [j.job_id for j in released] == [job.job_id]
        assert released[0].state is JobState.QUEUED
        assert queue.pending() == 1

    def test_expired_lease_fails_when_budget_exhausted(self, queue):
        queue.submit(make_job(_spec(), retry_budget=0))
        job = queue.claim("w0", lease_s=0.0)
        released = queue.release_expired()
        assert released[0].state is JobState.FAILED
        failed = queue.get(job.job_id)
        assert failed.state is JobState.FAILED
        assert "lease" in failed.error and "w0" in failed.error

    def test_crash_inside_claim_is_recovered_without_spending_a_retry(
        self, queue, tmp_path
    ):
        # Simulate a worker dying between the claim rename and everything after it:
        # the body sits in claimed/ still saying "queued", with no lease at all.
        import os

        job_id = queue.submit(make_job(_spec(), retry_budget=0))
        body = tmp_path / "queue" / "claimed" / f"{job_id}.json"
        os.rename(tmp_path / "queue" / "queued" / f"{job_id}.json", body)
        # A fresh lease-less body is within the claim grace: recovery must wait.
        assert queue.release_expired() == []
        aged = time.time() - 2 * CLAIM_GRACE_S
        os.utime(body, (aged, aged))
        (released,) = queue.release_expired()
        assert released.job_id == job_id
        assert released.state is JobState.QUEUED
        reclaimed = queue.claim("w1")
        assert reclaimed.job_id == job_id
        assert reclaimed.attempts == 1  # the phantom claim consumed nothing

    def test_renewed_lease_survives(self, queue):
        queue.submit(make_job(_spec()))
        job = queue.claim("w0", lease_s=0.0)
        queue.renew_lease(job.job_id, "w0", lease_s=60.0)
        assert queue.release_expired() == []


class TestCancel:
    def test_cancel_queued_is_immediate(self, queue):
        job_id = queue.submit(make_job(_spec()))
        cancelled = queue.cancel(job_id)
        assert cancelled.state is JobState.CANCELLED
        assert queue.claim("w0") is None

    def test_cancel_running_drops_a_marker(self, queue):
        job_id = queue.submit(make_job(_spec()))
        queue.claim("w0")
        assert not queue.cancel_requested(job_id)
        still_running = queue.cancel(job_id)
        assert still_running.state is JobState.RUNNING
        assert queue.cancel_requested(job_id)

    def test_cancel_finished_job_rejected(self, queue):
        queue.submit(make_job(_spec()))
        job = queue.claim("w0")
        queue.complete(job, JobState.DONE)
        with pytest.raises(ServiceError, match="already finished"):
            queue.cancel(job.job_id)

    def test_cancel_unknown_job_rejected(self, queue):
        with pytest.raises(ServiceError, match="unknown job"):
            queue.cancel("job-nope")


class TestInspection:
    def test_get_unknown_job(self, queue):
        with pytest.raises(ServiceError, match="unknown job"):
            queue.get("job-missing")

    def test_jobs_sorted_by_submission(self, queue):
        ids = [queue.submit(make_job(_spec(seed))) for seed in range(3)]
        listed = queue.jobs()
        assert {job.job_id for job in listed} == set(ids)
        stamps = [(job.submitted_at, job.job_id) for job in listed]
        assert stamps == sorted(stamps)
        assert len(queue) == 3

    def test_corrupt_entry_reports_path(self, queue, tmp_path):
        bad = tmp_path / "queue" / "queued" / "job-bad.json"
        bad.write_text("not json")
        with pytest.raises(ServiceError, match="corrupt queue entry"):
            queue.claim("w0")

    def test_writes_are_atomic_via_tmp_staging(self, queue, tmp_path):
        queue.submit(make_job(_spec()))
        assert list((tmp_path / "queue" / "tmp").iterdir()) == []  # no stragglers
