"""Tests for the job model: state machine, retry accounting and serialisation."""

import pytest

from repro.exceptions import ServiceError
from repro.experiments.spec import ExperimentSpec, Sweep
from repro.service.jobs import TERMINAL_STATES, Job, JobState, make_job, submit_provenance
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture
def spec():
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=3), policy="fedavg-random"
    )


@pytest.fixture
def job(spec):
    return make_job(spec, label="unit", priority=2, retry_budget=1)


class TestStateMachine:
    def test_new_jobs_start_queued(self, job):
        assert job.state is JobState.QUEUED
        assert not job.finished

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES, key=lambda s: s.value))
    def test_running_reaches_every_terminal_state(self, spec, terminal):
        fresh = make_job(spec)
        fresh.transition(JobState.RUNNING)
        fresh.transition(terminal)
        assert fresh.finished and fresh.finished_at is not None

    def test_running_can_requeue_for_retry(self, job):
        job.transition(JobState.RUNNING)
        job.worker = "w0"
        job.transition(JobState.QUEUED)
        assert job.worker is None  # a requeued job belongs to nobody

    def test_terminal_states_are_final(self, job):
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        with pytest.raises(ServiceError, match="illegal transition"):
            job.transition(JobState.RUNNING)

    def test_queued_cannot_jump_to_done(self, job):
        with pytest.raises(ServiceError, match="queued -> done"):
            job.transition(JobState.DONE)

    def test_running_sets_started_at(self, job):
        assert job.started_at is None
        job.transition(JobState.RUNNING)
        assert job.started_at is not None


class TestRetryAccounting:
    def test_retries_left_counts_first_run(self, spec):
        job = make_job(spec, retry_budget=2)
        assert job.retries_left == 3  # the first attempt plus two retries
        job.attempts = 3
        assert job.retries_left == 0

    def test_negative_budget_rejected(self, spec):
        with pytest.raises(ServiceError, match="retry_budget"):
            make_job(spec, retry_budget=-1)

    def test_nonpositive_timeout_rejected(self, spec):
        with pytest.raises(ServiceError, match="timeout_s"):
            make_job(spec, timeout_s=0.0)


class TestConstruction:
    def test_job_needs_specs(self):
        with pytest.raises(ServiceError, match="at least one"):
            Job(specs=())

    def test_make_job_expands_sweeps(self, spec):
        sweep = Sweep(spec, policy=["fedavg-random", "performance"], setting=["S3", "S4"])
        job = make_job(sweep)
        assert len(job.specs) == 4
        assert len(set(job.spec_hashes)) == 4

    def test_make_job_validates_specs_at_submission(self, spec):
        bogus = ExperimentSpec(scenario=spec.scenario, policy="autofk")
        with pytest.raises(Exception, match="did you mean"):
            make_job([bogus])

    def test_job_ids_are_unique(self, spec):
        assert make_job(spec).job_id != make_job(spec).job_id

    def test_provenance_records_submitter(self):
        provenance = submit_provenance()
        assert set(provenance) >= {"user", "host", "pid", "python"}


class TestSerialisation:
    def test_roundtrip(self, job):
        job.transition(JobState.RUNNING)
        job.worker = "w0"
        job.cache_hits = 1
        clone = Job.from_dict(job.to_dict())
        assert clone.job_id == job.job_id
        assert clone.state is JobState.RUNNING
        assert clone.specs == job.specs
        assert clone.spec_hashes == job.spec_hashes
        assert clone.cache_hits == 1
        assert clone.priority == job.priority
        assert clone.provenance == job.provenance

    def test_payload_names_spec_hashes(self, job):
        payload = job.to_dict()
        assert payload["spec_hashes"] == list(job.spec_hashes)

    def test_unknown_schema_rejected(self, job):
        payload = job.to_dict()
        payload["schema"] = 99
        with pytest.raises(ServiceError, match="unsupported job schema"):
            Job.from_dict(payload)

    def test_corrupt_payload_reported(self, job):
        payload = job.to_dict()
        del payload["job_id"]
        with pytest.raises(ServiceError, match="corrupt job payload"):
            Job.from_dict(payload)
