"""Race tests for claim/lease interleavings, cancel-vs-claim and sidecar sweeping.

These force the exact interleavings the lease-before-rename fix closes: a recovery
scan firing in the instant between a claim's rename and everything after it must
never steal (and thereby double-execute) the job.
"""

import os
import threading
import time

import pytest

from repro.experiments.spec import ExperimentSpec
from repro.service import queue as queue_module
from repro.service.jobs import JobState, make_job
from repro.service.queue import CLAIM_GRACE_S, JobQueue
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=seed), policy="fedavg-random"
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


class TestClaimLeaseRace:
    def test_recovery_firing_inside_a_claim_cannot_steal_the_job(
        self, queue, tmp_path, monkeypatch
    ):
        # Force the historical race: the instant the claim rename lands — before
        # claim() has done anything else — a rival worker runs a recovery scan, and
        # an aggressive one at that (its clock is past the claim grace, so a
        # lease-less body WOULD be recovered).  The lease staged before the rename
        # is what must stop it.
        job_id = queue.submit(make_job(_spec()))
        rival = JobQueue(tmp_path / "queue")
        stolen: list = []
        real_rename = os.rename
        raced = threading.Event()

        def racing_rename(source, target):
            real_rename(source, target)
            if "claimed" in str(target) and not raced.is_set():
                raced.set()
                stolen.extend(rival.release_expired(now=time.time() + CLAIM_GRACE_S + 1))

        monkeypatch.setattr(queue_module.os, "rename", racing_rename)
        claimed = queue.claim("w0", lease_s=600.0)
        assert raced.is_set()
        assert stolen == []  # the staged lease kept the recovery scan out
        assert claimed.job_id == job_id
        assert claimed.attempts == 1
        assert rival.claim("w1") is None  # no second copy to double-execute
        assert queue.get(job_id).state is JobState.RUNNING

    def test_lease_exists_from_the_instant_the_body_is_claimed(
        self, queue, tmp_path, monkeypatch
    ):
        queue.submit(make_job(_spec()))
        lease_present: list[bool] = []
        real_rename = os.rename

        def asserting_rename(source, target):
            if "claimed" in str(target):
                lease_present.append(os.path.exists(str(target)[: -len(".json")] + ".lease"))
            real_rename(source, target)

        monkeypatch.setattr(queue_module.os, "rename", asserting_rename)
        assert queue.claim("w0") is not None
        assert lease_present == [True]

    def test_losing_claimers_staged_lease_is_harmless(self, queue, tmp_path):
        # Two workers race for one job: the loser has already staged a lease by the
        # time its rename fails.  That stale stage must neither release the winner's
        # claim nor linger as an orphan once the job completes.
        job_id = queue.submit(make_job(_spec()))
        rival = JobQueue(tmp_path / "queue")
        winner = queue.claim("w0", lease_s=600.0)
        assert winner is not None
        # The loser stages its lease (overwriting the winner's) and then loses the
        # rename — exactly what a concurrent claim() does internally.
        rival.renew_lease(job_id, "w1", lease_s=600.0)
        assert rival.claim("w1") is None
        assert queue.release_expired() == []  # staged lease never triggers recovery
        queue.complete(winner, JobState.DONE)
        assert not (tmp_path / "queue" / "claimed" / f"{job_id}.lease").exists()


class TestCancelVsClaim:
    def test_concurrent_cancel_and_claim_agree_on_every_job(self, queue, tmp_path):
        ids = [queue.submit(make_job(_spec(seed))) for seed in range(16)]
        rival = JobQueue(tmp_path / "queue")
        claimed: list[str] = []
        cancelled: list[str] = []
        lock = threading.Lock()

        def claimer():
            while True:
                job = queue.claim("w0")
                if job is None:
                    if queue.pending() == 0:
                        return
                    continue
                with lock:
                    claimed.append(job.job_id)

        def canceller():
            for job_id in ids:
                job = rival.cancel(job_id)
                if job.state is JobState.CANCELLED:
                    with lock:
                        cancelled.append(job_id)

        threads = [threading.Thread(target=claimer), threading.Thread(target=canceller)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every job went exactly one way: immediately cancelled, or claimed (the
        # cancel then degrades to a cooperative marker) — never both, never neither.
        assert sorted(claimed + cancelled) == sorted(ids)
        for job_id in claimed:
            assert queue.get(job_id).state is JobState.RUNNING
        for job_id in cancelled:
            assert queue.get(job_id).state is JobState.CANCELLED


class TestSidecarSweep:
    def test_orphaned_sidecars_are_swept_once_aged(self, queue, tmp_path):
        claimed_dir = tmp_path / "queue" / "claimed"
        orphan_lease = claimed_dir / "job-ghost.lease"
        orphan_cancel = claimed_dir / "job-ghost.cancel"
        orphan_lease.write_text("{}")
        orphan_cancel.write_text("{}")
        assert queue.sweep_sidecars() == []  # fresh: could be a claim staging
        aged = time.time() - 2 * CLAIM_GRACE_S
        for path in (orphan_lease, orphan_cancel):
            os.utime(path, (aged, aged))
        swept = queue.sweep_sidecars()
        assert sorted(path.name for path in swept) == ["job-ghost.cancel", "job-ghost.lease"]
        assert not orphan_lease.exists() and not orphan_cancel.exists()
        assert queue.sweep_sidecars() == []  # idempotent

    def test_sidecars_of_live_claims_are_kept(self, queue, tmp_path):
        job_id = queue.submit(make_job(_spec()))
        queue.claim("w0", lease_s=600.0)
        lease = tmp_path / "queue" / "claimed" / f"{job_id}.lease"
        aged = time.time() - 2 * CLAIM_GRACE_S
        os.utime(lease, (aged, aged))  # even an old lease is not an orphan
        assert queue.sweep_sidecars() == []
        assert lease.exists()

    def test_release_expired_sweeps_on_the_way_out(self, queue, tmp_path):
        orphan = tmp_path / "queue" / "claimed" / "job-ghost.lease"
        orphan.write_text("{}")
        aged = time.time() - 2 * CLAIM_GRACE_S
        os.utime(orphan, (aged, aged))
        assert queue.release_expired() == []
        assert not orphan.exists()
