"""Service-layer telemetry: queue gauges, event seq/dur_s and scheduler metrics."""

import pytest

from repro import telemetry
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EVENT_SCHEMA_VERSION, EventLog
from repro.service.jobs import make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _spec(seed=0, devices=25, rounds=3):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=devices, max_rounds=rounds, seed=seed),
        policy="fedavg-random",
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def events(tmp_path):
    return EventLog(tmp_path / "events.jsonl")


class TestQueueGauges:
    def test_export_gauges_reflect_job_states(self, queue):
        registry = telemetry.MetricsRegistry(enabled=True)
        queue.submit(make_job(_spec(0)))
        queue.submit(make_job(_spec(1)))
        counts = queue.export_gauges(registry)
        assert counts["queued"] == 2
        assert registry.gauge("repro_queue_depth").value() == 2.0
        assert registry.gauge("repro_jobs").value(state="queued") == 2.0
        assert registry.gauge("repro_jobs").value(state="done") == 0.0

    def test_export_gauges_default_to_the_process_registry(self, queue):
        queue.submit(make_job(_spec(0)))
        counts = queue.export_gauges()  # process registry is disabled: counts only
        assert counts["queued"] == 1
        assert telemetry.get_registry().snapshot() == []


class TestEventSequencing:
    def test_schema_version_is_three(self):
        assert EVENT_SCHEMA_VERSION == 3

    def test_seq_increments_per_job(self, events):
        events.emit("job_started", job_id="job-a")
        events.emit("spec_done", job_id="job-a")
        events.emit("job_started", job_id="job-b")
        events.emit("job_done", job_id="job-a")
        recorded = events.read()
        assert [event.get("seq") for event in recorded] == [1, 2, 1, 3]
        assert all(event["schema"] == EVENT_SCHEMA_VERSION for event in recorded)

    def test_events_without_a_job_carry_no_seq(self, events):
        events.emit("scheduler_started", workers=1)
        assert "seq" not in events.read()[0]


class TestSchedulerTelemetry:
    def test_drain_writes_snapshot_with_child_metrics(self, tmp_path, queue, events):
        telemetry.configure(enabled=True)
        store = ArtifactStore(tmp_path / "results.sqlite")
        metrics_path = tmp_path / "metrics.json"
        queue.submit(make_job(_spec(), label="obs"))
        scheduler = Scheduler(
            queue, store, events, poll_s=0.05, worker_prefix="t", metrics_path=metrics_path
        )
        scheduler.serve(workers=1, drain=True)

        registry = telemetry.get_registry()
        # Parent-side scheduler metrics.
        assert registry.counter("repro_jobs_finished_total").value(state="done") == 1.0
        assert registry.counter("repro_specs_total").value(outcome="executed") == 1.0
        assert registry.histogram("repro_job_duration_s").count(state="done") == 1
        # Child-side engine metrics travel through the result pipe and are merged.
        assert registry.counter("repro_rounds_total").value(policy="fedavg-random") == 3.0

        payload = telemetry.read_snapshot(metrics_path)
        merged = telemetry.MetricsRegistry()
        merged.merge(payload["metrics"])
        assert merged.counter("repro_rounds_total").value(policy="fedavg-random") == 3.0

        # Scheduler spans: one claim, one execute, one flush for the single job.
        names = [span.name for span in telemetry.get_tracer().spans()]
        assert names.count("claim") == 1
        assert names.count("execute") == 1
        assert names.count("flush") == 1

    def test_terminal_job_events_carry_dur_s(self, tmp_path, queue, events):
        store = ArtifactStore(tmp_path / "results.sqlite")
        queue.submit(make_job(_spec()))
        Scheduler(queue, store, events, poll_s=0.05, worker_prefix="t").serve(
            workers=1, drain=True
        )
        done = [event for event in events.read() if event["event"] == "job_done"]
        assert len(done) == 1
        assert done[0]["dur_s"] > 0.0
        assert done[0]["seq"] >= 1

    def test_disabled_telemetry_writes_no_snapshot(self, tmp_path, queue, events):
        store = ArtifactStore(tmp_path / "results.sqlite")
        metrics_path = tmp_path / "metrics.json"
        queue.submit(make_job(_spec()))
        Scheduler(
            queue, store, events, poll_s=0.05, worker_prefix="t", metrics_path=metrics_path
        ).serve(workers=1, drain=True)
        assert not metrics_path.exists()
        assert telemetry.get_registry().snapshot() == []
