"""Tests for the JSONL event log and its tail stream."""

import json
import threading

from repro.service.events import EventLog, format_event, tail_events


class TestEmitAndRead:
    def test_emit_read_roundtrip(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("job_started", job_id="job-1", worker="w0", attempt=1)
        log.emit("job_done", job_id="job-1", cache_hits=2)
        events = log.read()
        assert [event["event"] for event in events] == ["job_started", "job_done"]
        assert events[0]["worker"] == "w0" and events[0]["attempt"] == 1
        assert events[1]["cache_hits"] == 2
        assert all("ts" in event and "schema" in event for event in events)

    def test_emit_creates_parent_directories(self, tmp_path):
        log = EventLog(tmp_path / "deep" / "nested" / "events.jsonl")
        log.emit("scheduler_started")
        assert len(log.read()) == 1

    def test_echo_prints_the_formatted_line(self, tmp_path, capsys):
        EventLog(tmp_path / "events.jsonl", echo=True).emit("worker_started", worker="w0")
        out = capsys.readouterr().out
        assert "worker_started" in out and "[w0]" in out

    def test_concurrent_appends_never_interleave(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")

        def spam(tag):
            for index in range(50):
                log.emit("tick", worker=tag, index=index)

        threads = [threading.Thread(target=spam, args=(f"w{n}",)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = log.read()
        assert len(events) == 200  # every line parsed cleanly


class TestTail:
    def test_tail_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"event": "a"}) + "\n" + "garbage\n" + json.dumps({"event": "b"})
        )  # final line has no newline: held back as torn
        assert [event["event"] for event in tail_events(path, follow=False)] == ["a"]

    def test_tail_missing_file_yields_nothing(self, tmp_path):
        assert list(tail_events(tmp_path / "absent.jsonl", follow=False)) == []

    def test_follow_sees_later_appends_and_stops(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("first")
        seen = []
        done = threading.Event()

        def consume():
            for event in tail_events(path, follow=True, poll_s=0.01, stop=done.is_set):
                seen.append(event["event"])
                if event["event"] == "second":
                    done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        log.emit("second")
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert seen == ["first", "second"]


class TestFormat:
    def test_format_includes_extras_sorted(self):
        line = format_event(
            {"ts": 0.0, "event": "spec_done", "job_id": "job-1", "worker": "w0",
             "spec": "abc", "elapsed_s": 1.5}
        )
        assert "spec_done" in line and "job-1" in line and "[w0]" in line
        assert "elapsed_s=1.5 spec=abc" in line
