"""Tests for the JSONL event log, durable cursors, seq counters and the tail stream."""

import json
import multiprocessing
import threading

from repro import telemetry
from repro.service.events import (
    INDEX_CHECKPOINT_EVERY,
    EventIndex,
    EventLog,
    SeqCounter,
    format_event,
    read_events_since,
    tail_events,
)


class TestEmitAndRead:
    def test_emit_read_roundtrip(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.emit("job_started", job_id="job-1", worker="w0", attempt=1)
        log.emit("job_done", job_id="job-1", cache_hits=2)
        events = log.read()
        assert [event["event"] for event in events] == ["job_started", "job_done"]
        assert events[0]["worker"] == "w0" and events[0]["attempt"] == 1
        assert events[1]["cache_hits"] == 2
        assert all("ts" in event and "schema" in event for event in events)

    def test_emit_creates_parent_directories(self, tmp_path):
        log = EventLog(tmp_path / "deep" / "nested" / "events.jsonl")
        log.emit("scheduler_started")
        assert len(log.read()) == 1

    def test_echo_prints_the_formatted_line(self, tmp_path, capsys):
        EventLog(tmp_path / "events.jsonl", echo=True).emit("worker_started", worker="w0")
        out = capsys.readouterr().out
        assert "worker_started" in out and "[w0]" in out

    def test_concurrent_appends_never_interleave(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")

        def spam(tag):
            for index in range(50):
                log.emit("tick", worker=tag, index=index)

        threads = [threading.Thread(target=spam, args=(f"w{n}",)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = log.read()
        assert len(events) == 200  # every line parsed cleanly


class TestTail:
    def test_tail_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"event": "a"}) + "\n" + "garbage\n" + json.dumps({"event": "b"})
        )  # final line has no newline: held back as torn
        assert [event["event"] for event in tail_events(path, follow=False)] == ["a"]

    def test_tail_missing_file_yields_nothing(self, tmp_path):
        assert list(tail_events(tmp_path / "absent.jsonl", follow=False)) == []

    def test_follow_sees_later_appends_and_stops(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("first")
        seen = []
        done = threading.Event()

        def consume():
            for event in tail_events(path, follow=True, poll_s=0.01, stop=done.is_set):
                seen.append(event["event"])
                if event["event"] == "second":
                    done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        log.emit("second")
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert seen == ["first", "second"]


class TestDurableCursors:
    def test_since_cursor_annotates_and_skips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for name in ("a", "b", "c", "d"):
            log.emit(name)
        events = list(tail_events(path, since_cursor=0))
        assert [(e["event"], e["cursor"]) for e in events] == [
            ("a", 1), ("b", 2), ("c", 3), ("d", 4)
        ]
        assert [e["event"] for e in tail_events(path, since_cursor=2)] == ["c", "d"]

    def test_resume_at_saved_cursor_has_no_duplicates_or_gaps(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for index in range(20):
            log.emit("tick", index=index)
        first = list(tail_events(path, since_cursor=0))[:7]
        saved = first[-1]["cursor"]
        for index in range(20, 25):
            log.emit("tick", index=index)
        rest = list(tail_events(path, since_cursor=saved))
        indices = [e["index"] for e in first + rest]
        assert indices == list(range(25))

    def test_read_events_since_filters_but_advances_cursor(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("keep", job_id="job-a")
        log.emit("drop", job_id="job-b")
        log.emit("keep", job_id="job-a")
        events, last = read_events_since(path, 0, job="job-a")
        assert [e["cursor"] for e in events] == [1, 3]
        assert last == 3  # The filtered-out line is consumed, never re-read.
        events, last = read_events_since(path, last, job="job-a")
        assert events == [] and last == 3

    def test_read_events_since_limit_stops_cursor_at_last_returned(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for index in range(10):
            log.emit("tick", index=index)
        events, last = read_events_since(path, 0, limit=4)
        assert [e["index"] for e in events] == [0, 1, 2, 3] and last == 4
        events, last = read_events_since(path, last, limit=100)
        assert [e["index"] for e in events] == list(range(4, 10)) and last == 10

    def test_index_checkpoints_let_deep_cursors_seek(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        total = INDEX_CHECKPOINT_EVERY * 2 + 10
        for index in range(total):
            log.emit("tick", index=index)
        index = EventIndex(path).refresh()
        assert index.count == total
        assert len(index.checkpoints) == 3  # (0,0) + one per 256 complete lines
        cursor, offset = index.checkpoint_for(total - 5)
        assert cursor == INDEX_CHECKPOINT_EVERY * 2 and offset > 0
        events = list(tail_events(path, since_cursor=total - 5))
        assert [e["index"] for e in events] == list(range(total - 5, total))

    def test_stale_index_is_rebuilt_after_rotation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for _ in range(10):
            log.emit("old")
        EventIndex(path).refresh()  # Persist an index covering 10 lines.
        path.unlink()
        log.emit("new")  # The rotated log is much shorter than the index claims.
        index = EventIndex(path).refresh()
        assert index.count == 1
        assert [e["event"] for e in tail_events(path, since_cursor=0)] == ["new"]

    def test_cursor_past_rotated_log_restarts_from_top(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for _ in range(10):
            log.emit("old")
        path.unlink()
        log.emit("new")
        # A consumer that saved cursor 10 against the old log must not hang forever.
        events = list(tail_events(path, since_cursor=10))
        assert [(e["event"], e["cursor"]) for e in events] == [("new", 1)]

    def test_corrupt_index_file_is_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("a")
        index_path = EventIndex(path).path
        index_path.write_text("not json at all")
        assert EventIndex(path).refresh().count == 1


class TestTruncationRecovery:
    def test_follow_resets_after_truncation_instead_of_stalling(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        for _ in range(5):
            log.emit("before")
        seen = []
        done = threading.Event()

        def consume():
            for event in tail_events(path, follow=True, poll_s=0.01, stop=done.is_set):
                seen.append(event["event"])
                if event["event"] == "after":
                    done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        for _ in range(50):
            if len(seen) >= 5:
                break
            done.wait(0.05)
        path.write_text("")  # Rotation: the file shrinks under the follower.
        log.emit("after")
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert seen == ["before"] * 5 + ["after"]


class TestSeqCounter:
    def test_seq_survives_new_log_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).emit("a", job_id="job-1")
        EventLog(path).emit("b", job_id="job-1")  # Fresh instance, same counter file.
        assert [event["seq"] for event in EventLog(path).read()] == [1, 2]

    def test_peek_reflects_last_minted(self, tmp_path):
        counter = SeqCounter(tmp_path / "seq")
        assert counter.peek("job-1") == 0
        assert counter.next("job-1") == 1
        assert counter.next("job-2") == 1
        assert counter.next("job-1") == 2
        assert counter.peek("job-1") == 2

    def test_forked_processes_mint_unique_monotone_seqs(self, tmp_path):
        # Two scheduler processes sharing one service root must never mint
        # duplicate seqs for the same job — the counter is file-backed + locked.
        path = tmp_path / "events.jsonl"
        ctx = multiprocessing.get_context()

        def spam(tag):
            log = EventLog(path)
            for _ in range(40):
                log.emit("tick", job_id="job-shared", worker=tag)

        workers = [ctx.Process(target=spam, args=(f"p{n}",)) for n in range(2)]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60.0)
            assert process.exitcode == 0
        seqs = [event["seq"] for event in EventLog(path).read()]
        assert sorted(seqs) == list(range(1, 81))  # unique AND gap-free

    def test_forked_processes_interleave_monotonically_per_writer(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ctx = multiprocessing.get_context()

        def spam(tag):
            log = EventLog(path)
            for _ in range(25):
                log.emit("tick", job_id="job-shared", worker=tag)

        workers = [ctx.Process(target=spam, args=(f"p{n}",)) for n in range(2)]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60.0)
            assert process.exitcode == 0
        by_worker: dict[str, list[int]] = {}
        for event in EventLog(path).read():
            by_worker.setdefault(event["worker"], []).append(event["seq"])
        # Each writer's own seqs strictly increase in file order (file order is
        # append order, and the shared counter never goes backwards).
        for seqs in by_worker.values():
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)


class TestEmitTelemetry:
    def test_emit_counts_events_by_type(self, tmp_path):
        telemetry.configure(enabled=True)
        try:
            registry = telemetry.get_registry()
            registry.reset()
            log = EventLog(tmp_path / "events.jsonl")
            log.emit("job_started", job_id="job-1")
            log.emit("spec_done", job_id="job-1")
            log.emit("spec_done", job_id="job-1")
            counter = registry.counter("repro_events_emitted_total")
            assert counter.value(event="job_started") == 1
            assert counter.value(event="spec_done") == 2
        finally:
            telemetry.get_registry().reset()
            telemetry.configure(enabled=False)


class TestFormat:
    def test_format_includes_extras_sorted(self):
        line = format_event(
            {"ts": 0.0, "event": "spec_done", "job_id": "job-1", "worker": "w0",
             "spec": "abc", "elapsed_s": 1.5}
        )
        assert "spec_done" in line and "job-1" in line and "[w0]" in line
        assert "elapsed_s=1.5 spec=abc" in line

    def test_missing_or_zero_ts_renders_placeholder_not_1970(self):
        assert format_event({"event": "x"}).startswith("--:--:--")
        assert format_event({"event": "x", "ts": 0.0}).startswith("--:--:--")
        assert not format_event({"event": "x", "ts": 0.0}).startswith("00:")
