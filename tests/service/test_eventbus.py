"""Tests for the event bus: in-process fan-out, long-poll/SSE server, live drains."""

import json
import threading
import time
import urllib.request

import pytest

from repro.experiments.spec import ExperimentSpec
from repro.service.eventbus import EventBus, EventPlaneServer
from repro.service.events import EventLog, tail_events
from repro.service.jobs import make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0, devices=25, rounds=3):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=devices, max_rounds=rounds, seed=seed),
        policy="fedavg-random",
    )


@pytest.fixture
def path(tmp_path):
    return tmp_path / "events.jsonl"


@pytest.fixture
def log(path):
    return EventLog(path)


@pytest.fixture
def bus(path, log):
    bus = EventBus(path, poll_s=0.05, since_cursor=0).start()
    log.attach_bus(bus)
    yield bus
    bus.close()


@pytest.fixture
def server(bus):
    server = EventPlaneServer(bus).start()
    yield server
    server.close()


def _get_json(url):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


class TestBusFanOut:
    def test_subscribers_see_events_in_order_with_cursors(self, bus, log):
        subscription = bus.subscribe()
        for name in ("a", "b", "c"):
            log.emit(name)
        got = [subscription.get(timeout=2.0) for _ in range(3)]
        assert [(g["event"], g["cursor"]) for g in got] == [("a", 1), ("b", 2), ("c", 3)]

    def test_filters_apply_per_subscriber(self, bus, log):
        by_job = bus.subscribe(job="job-a")
        by_type = bus.subscribe(events=("job_done",))
        log.emit("job_started", job_id="job-a")
        log.emit("job_done", job_id="job-b")
        assert by_job.get(timeout=2.0)["event"] == "job_started"
        assert by_type.get(timeout=2.0)["event"] == "job_done"
        assert by_job.get(timeout=0.2) is None
        assert by_type.get(timeout=0.2) is None

    def test_lagged_subscriber_is_dropped_with_marker_not_blocking(self, bus, log):
        slow = bus.subscribe(max_queue=2)
        keeper = bus.subscribe()
        for index in range(10):
            log.emit("tick", index=index)
        assert [keeper.get(timeout=2.0)["index"] for _ in range(10)] == list(range(10))
        drained = list(slow.stream(poll_s=0.05))
        assert drained[-1]["event"] == "subscriber_lagged"
        assert len(drained) <= 3  # two buffered + the marker
        assert slow.closed  # dropped, never blocking the emitter

    def test_bus_started_at_end_of_log_skips_history(self, path, log):
        log.emit("old")
        bus = EventBus(path, poll_s=0.05).start()  # since_cursor=None: end of log
        log.attach_bus(bus)
        try:
            subscription = bus.subscribe()
            log.emit("new")
            got = subscription.get(timeout=2.0)
            assert got["event"] == "new" and got["cursor"] == 2
        finally:
            bus.close()

    def test_wait_for_unblocks_on_emit(self, bus, log):
        log.emit("first")
        assert bus.wait_for(0, timeout=2.0) >= 1
        result = {}

        def wait():
            result["cursor"] = bus.wait_for(1, timeout=5.0)

        waiter = threading.Thread(target=wait)
        waiter.start()
        log.emit("second")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert result["cursor"] >= 2


class TestLongPoll:
    def test_immediate_batch_and_cursor(self, server, log):
        log.emit("a", job_id="job-1")
        log.emit("b", job_id="job-2")
        body = _get_json(f"{server.url}?cursor=0")
        assert [e["event"] for e in body["events"]] == ["a", "b"]
        assert body["cursor"] == 2

    def test_job_and_event_filters(self, server, log):
        log.emit("job_started", job_id="job-1")
        log.emit("job_started", job_id="job-2")
        log.emit("job_done", job_id="job-1")
        body = _get_json(f"{server.url}?cursor=0&job=job-1")
        assert [e["event"] for e in body["events"]] == ["job_started", "job_done"]
        body = _get_json(f"{server.url}?cursor=0&event=job_done")
        assert [e["event"] for e in body["events"]] == ["job_done"]
        body = _get_json(f"{server.url}?cursor=0&event=job_done&event=job_started")
        assert len(body["events"]) == 3

    def test_long_poll_parks_until_an_event_arrives(self, server, log):
        log.emit("first")
        result = {}

        def poll():
            result["body"] = _get_json(f"{server.url}?cursor=1&timeout=10")

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.2)  # Let the handler park on the bus.
        log.emit("second")
        poller.join(timeout=5.0)
        assert not poller.is_alive()
        assert [e["event"] for e in result["body"]["events"]] == ["second"]

    def test_timeout_returns_empty_batch_with_cursor(self, server, log):
        log.emit("only")
        body = _get_json(f"{server.url}?cursor=1&timeout=0.2")
        assert body["events"] == [] and body["cursor"] == 1

    def test_disconnect_resume_at_saved_cursor_no_duplicates(self, server, log):
        for index in range(10):
            log.emit("tick", index=index)
        first = _get_json(f"{server.url}?cursor=0&limit=4")
        saved = first["cursor"]
        for index in range(10, 13):
            log.emit("tick", index=index)
        # A brand-new connection (simulated disconnect) resumes at the cursor.
        rest = _get_json(f"{server.url}?cursor={saved}")
        indices = [e["index"] for e in first["events"] + rest["events"]]
        assert indices == list(range(13))

    def test_events_sub_http_accepts_schemeless_host_port(self, server, log, capsys):
        from repro.cli import main

        log.emit("job_submitted", job_id="job-1")
        address = f"{server.host}:{server.port}"  # as printed by serve, no scheme
        assert main(["events", "sub", "--http", address, "--limit", "1"]) == 0
        line = json.loads(capsys.readouterr().out)
        assert line["event"] == "job_submitted" and line["cursor"] == 1

    def test_healthz(self, server):
        with urllib.request.urlopen(f"http://{server.host}:{server.port}/healthz") as resp:
            assert resp.status == 200


class TestSSE:
    def test_stream_replays_backlog_then_follows_live(self, server, log):
        log.emit("old-1")
        log.emit("old-2")
        frames = []
        done = threading.Event()

        def consume():
            url = f"http://{server.host}:{server.port}/events/stream?cursor=0"
            with urllib.request.urlopen(url) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line.startswith("data: "):
                        frames.append(json.loads(line[len("data: "):]))
                        if frames[-1].get("event") == "live":
                            done.set()
                            return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.3)  # Backlog replay + subscription switchover.
        log.emit("live")
        assert done.wait(timeout=5.0)
        assert [f["event"] for f in frames] == ["old-1", "old-2", "live"]
        assert [f["cursor"] for f in frames] == [1, 2, 3]


class TestLiveDrainAcceptance:
    def test_midflight_subscriber_sees_exactly_the_file_tail(self, tmp_path, path):
        """A long-poll consumer started mid-drain with cursor=0 receives every event
        the file tail sees, in order, with no duplicates across a simulated
        disconnect/resume at a saved cursor."""
        queue = JobQueue(tmp_path / "queue")
        store = ArtifactStore(tmp_path / "results.sqlite")
        log = EventLog(path)
        scheduler = Scheduler(queue, store, log, poll_s=0.05, worker_prefix="t")
        for seed in range(3):
            queue.submit(make_job(_spec(seed), label=f"s{seed}"))
        bus = EventBus(path, poll_s=0.05, since_cursor=0).start()
        log.attach_bus(bus)
        server = EventPlaneServer(bus).start()
        drain = threading.Thread(
            target=lambda: scheduler.serve(workers=2, drain=True, install_signals=False)
        )
        drain.start()
        received = []
        cursor = 0
        disconnected = False
        try:
            while True:
                body = _get_json(f"{server.url}?cursor={cursor}&timeout=2&limit=50")
                received.extend(body["events"])
                cursor = body["cursor"]
                if not disconnected and len(received) >= 4:
                    disconnected = True  # Resume from the saved cursor, fresh request.
                    continue
                if not body["events"] and not drain.is_alive():
                    break
        finally:
            drain.join(timeout=60.0)
            server.close()
            bus.close()
        assert not drain.is_alive()
        expected = list(tail_events(path, since_cursor=0))
        assert [e["cursor"] for e in received] == [e["cursor"] for e in expected]
        assert [e["event"] for e in received] == [e["event"] for e in expected]
        assert len({e["cursor"] for e in received}) == len(received)  # no duplicates
        names = [e["event"] for e in received]
        assert names.count("job_done") == 3
        assert names[-1] == "scheduler_stopped"
