"""Tests for the SQLite artifact store: cache semantics, migration and artifacts."""

import json
import warnings

import pytest

from repro.exceptions import ServiceError
from repro.experiments.runner import ResultStore, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.service.store import ArtifactStore, migrate_jsonl, open_store
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0, policy="fedavg-random"):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=4, seed=seed), policy=policy
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "results.sqlite")


@pytest.fixture
def result():
    return run_experiment(_spec())


class TestCacheSemantics:
    """The SQLite backend must be a drop-in for the JSONL store's hit/miss behaviour."""

    def test_miss_on_empty_store(self, store):
        assert store.get(_spec()) is None
        assert _spec() not in store
        assert len(store) == 0

    def test_put_get_roundtrip_flags_cached(self, store, result):
        store.put(result)
        hit = store.get(_spec())
        assert hit is not None and hit.cached
        assert hit.summaries == result.summaries
        assert hit.spec == result.spec
        assert _spec() in store and len(store) == 1

    def test_lookup_by_raw_hash(self, store, result):
        store.put(result)
        assert store.get(_spec().spec_hash()) is not None
        assert store.get("0" * 64) is None

    def test_put_is_idempotent(self, store, result):
        store.put(result)
        store.put(result)
        assert len(store) == 1

    def test_persists_across_reopen(self, tmp_path, result):
        ArtifactStore(tmp_path / "results.sqlite").put(result)
        reopened = ArtifactStore(tmp_path / "results.sqlite")
        assert reopened.get(_spec()) is not None

    def test_matches_jsonl_backend_verdicts(self, tmp_path, result):
        jsonl = ResultStore(tmp_path / "a.jsonl")
        sqlite = ArtifactStore(tmp_path / "a.sqlite")
        for backend in (jsonl, sqlite):
            backend.put(result)
        for probe in (_spec(), _spec(seed=99)):
            assert (jsonl.get(probe) is None) == (sqlite.get(probe) is None)

    def test_count_by_schema(self, store, result):
        store.put(result)
        counts = store.count_by_schema()
        assert counts == {result.spec.to_dict()["schema"]: 1}


class TestArtifacts:
    def test_put_get_roundtrip(self, store):
        store.put_artifact("job-1", "validation-abc", "validation-report", {"ok": False})
        artifacts = store.get_artifacts("job-1")
        assert len(artifacts) == 1
        assert artifacts[0]["name"] == "validation-abc"
        assert artifacts[0]["kind"] == "validation-report"
        assert artifacts[0]["payload"] == {"ok": False}

    def test_artifacts_scoped_by_job(self, store):
        store.put_artifact("job-1", "x", "report", {})
        assert store.get_artifacts("job-2") == []


class TestMigration:
    def test_migrates_every_entry_with_hashes_preserved(self, tmp_path):
        legacy = ResultStore(tmp_path / "results.jsonl")
        results = [run_experiment(_spec(seed)) for seed in range(3)]
        for result in results:
            legacy.put(result)
        store = ArtifactStore(tmp_path / "results.sqlite")
        migrated = migrate_jsonl(tmp_path / "results.jsonl", store)
        assert migrated == 3
        assert len(store) == 3
        for result in results:
            hit = store.get(result.spec.spec_hash())  # looked up by the ORIGINAL hash
            assert hit is not None and hit.summaries == result.summaries

    def test_migration_is_idempotent(self, tmp_path, result):
        ResultStore(tmp_path / "results.jsonl").put(result)
        store = ArtifactStore(tmp_path / "results.sqlite")
        assert migrate_jsonl(tmp_path / "results.jsonl", store) == 1
        assert migrate_jsonl(tmp_path / "results.jsonl", store) == 0
        assert len(store) == 1

    def test_missing_jsonl_migrates_nothing(self, tmp_path, store):
        assert migrate_jsonl(tmp_path / "absent.jsonl", store) == 0

    def test_tampered_hash_refused(self, tmp_path, result, store):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(result)
        line = json.loads(path.read_text())
        line["hash"] = "f" * 64
        path.write_text(json.dumps(line) + "\n")
        with pytest.raises(ServiceError, match="refusing to migrate"):
            migrate_jsonl(path, store)


class TestOpenStore:
    def test_jsonl_suffix_selects_legacy_backend(self, tmp_path):
        assert isinstance(open_store(tmp_path / "r.jsonl"), ResultStore)

    def test_default_suffix_selects_sqlite(self, tmp_path):
        assert isinstance(open_store(tmp_path / "r.sqlite"), ArtifactStore)

    def test_auto_migrates_legacy_sibling_once(self, tmp_path, result):
        ResultStore(tmp_path / "results.jsonl").put(result)
        store = open_store(tmp_path / "results.sqlite")
        assert store.get(_spec()) is not None
        receipt = store.get_meta("migrated:results.jsonl")
        assert json.loads(receipt)["migrated"] == 1
        # Second open does not rescan (receipt unchanged even if the jsonl grew).
        ResultStore(tmp_path / "results.jsonl").put(run_experiment(_spec(seed=5)))
        reopened = open_store(tmp_path / "results.sqlite")
        assert json.loads(reopened.get_meta("migrated:results.jsonl"))["migrated"] == 1

    def test_auto_migration_is_quiet_about_stale_lines(self, tmp_path, result):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(result)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"hash": "deadbeef", "spec": {"schema": 1}, "summaries": []}\n')
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # The legacy loader's warning must not escape.
            store = open_store(tmp_path / "results.sqlite")
        assert len(store) == 1
