"""Tests for the scheduler: draining, dedupe, retries, timeouts and cancellation."""

import multiprocessing
import threading
import time

import pytest

from repro.experiments.runner import ResultStore
from repro.experiments.spec import ExperimentSpec
from repro.service.events import EventLog
from repro.service.jobs import Job, JobState, make_job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore
from repro.sim.scenarios import ScenarioSpec


def _spec(seed=0, policy="fedavg-random", devices=25, rounds=4):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=devices, max_rounds=rounds, seed=seed),
        policy=policy,
    )


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "results.sqlite")


@pytest.fixture
def events(tmp_path):
    return EventLog(tmp_path / "events.jsonl")


@pytest.fixture
def scheduler(queue, store, events):
    return Scheduler(queue, store, events, poll_s=0.05, worker_prefix="t")


def _event_names(events):
    return [event["event"] for event in events.read()]


class TestDrain:
    def test_drains_all_jobs_and_fills_the_store(self, scheduler, queue, store, events):
        ids = [queue.submit(make_job(_spec(seed), label=f"s{seed}")) for seed in range(3)]
        scheduler.serve(workers=2, drain=True)
        for job_id in ids:
            job = queue.get(job_id)
            assert job.state is JobState.DONE
            assert (job.cache_hits, job.executed) == (0, 1)
        assert len(store) == 3
        names = _event_names(events)
        assert names.count("job_done") == 3
        assert names.count("spec_done") == 3
        assert names[-1] == "scheduler_stopped"

    def test_resubmitted_specs_are_cache_hits_not_reruns(self, scheduler, queue, store, events):
        queue.submit(make_job(_spec()))
        scheduler.serve(workers=1, drain=True)
        assert len(store) == 1
        resubmitted = queue.submit(make_job(_spec()))
        scheduler.serve(workers=1, drain=True)
        job = queue.get(resubmitted)
        assert job.state is JobState.DONE
        assert (job.cache_hits, job.executed) == (1, 0)
        assert "spec_cached" in _event_names(events)
        assert len(store) == 1  # nothing was re-executed or re-stored

    def test_high_priority_job_runs_first(self, scheduler, queue, events):
        low = queue.submit(make_job(_spec(0), priority=0))
        high = queue.submit(make_job(_spec(1), priority=9))
        scheduler.serve(workers=1, drain=True)
        started = [e["job_id"] for e in events.read() if e["event"] == "job_started"]
        assert started == [high, low]

    def test_shares_one_cache_with_the_batch_runner_protocol(self, queue, events, tmp_path):
        # Any StoreBackend works: the legacy JSONL store serves the scheduler too.
        store = ResultStore(tmp_path / "results.jsonl")
        scheduler = Scheduler(queue, store, events, poll_s=0.05)
        queue.submit(make_job(_spec()))
        scheduler.serve(workers=1, drain=True)
        assert len(store) == 1


class TestFailures:
    @pytest.fixture
    def bogus_job(self):
        # Bypasses make_job's eager validation, so the failure happens inside the
        # worker child — exactly the opaque-crash path the wrapping must illuminate.
        return Job(specs=(_spec(policy="no-such-policy"),), retry_budget=1)

    def test_failure_consumes_retries_then_fails_with_traceback(
        self, scheduler, queue, events, bogus_job
    ):
        queue.submit(bogus_job)
        scheduler.serve(workers=1, drain=True)
        job = queue.get(bogus_job.job_id)
        assert job.state is JobState.FAILED
        assert job.attempts == 2  # first run + one retry
        assert "no-such-policy" in job.error
        assert "Traceback" in job.error  # the original child traceback, not a pickle error
        assert bogus_job.spec_hashes[0][:12] in job.error
        names = _event_names(events)
        assert "job_requeued" in names and "job_failed" in names

    def test_scheduler_survives_a_failing_job_and_runs_the_rest(
        self, scheduler, queue, store, bogus_job
    ):
        queue.submit(bogus_job)
        good = queue.submit(make_job(_spec()))
        scheduler.serve(workers=1, drain=True)
        assert queue.get(bogus_job.job_id).state is JobState.FAILED
        assert queue.get(good).state is JobState.DONE
        assert len(store) == 1


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the invariant-corrupting monkeypatch must be inherited by the spec child",
)
class TestValidationFailure:
    def test_invariant_violation_fails_job_and_attaches_report(
        self, scheduler, queue, store, events, monkeypatch
    ):
        from repro.sim.results import SimulationResult

        original = SimulationResult.append

        def corrupting_append(self, record):
            import dataclasses as dc

            original(self, dc.replace(record, accuracy=2.0))

        monkeypatch.setattr(SimulationResult, "append", corrupting_append)
        job = make_job(_spec(), retry_budget=3, validate=True)
        queue.submit(job)
        scheduler.serve(workers=1, drain=True)
        failed = queue.get(job.job_id)
        # Deterministic failure: the retry budget is NOT spent on validation errors.
        assert failed.state is JobState.FAILED
        assert failed.attempts == 1
        assert "ValidationError" in failed.error
        artifacts = store.get_artifacts(job.job_id)
        assert len(artifacts) == 1
        assert artifacts[0]["kind"] == "validation-report"
        report = artifacts[0]["payload"]
        assert report["ok"] is False
        assert any("accuracy" in v["message"] for v in report["violations"])


class TestTimeout:
    def test_job_timeout_kills_the_spec_and_fails_the_job(self, scheduler, queue, events):
        slow_spec = ExperimentSpec(
            scenario=ScenarioSpec(num_devices=200, max_rounds=2000),
            policy="fedavg-random",
            stop_at_convergence=False,  # never finishes early: the timeout must fire
        )
        slow = make_job(slow_spec, label="slow", timeout_s=0.3)
        queue.submit(slow)
        scheduler.serve(workers=1, drain=True)
        job = queue.get(slow.job_id)
        assert job.state is JobState.FAILED
        assert "timed out after 0.3s" in job.error
        failed_events = [e for e in events.read() if e["event"] == "job_failed"]
        assert failed_events and failed_events[0]["reason"] == "timeout"


class TestCancellation:
    def test_cancel_marker_is_honoured_before_the_next_spec(self, scheduler, queue, events):
        job = make_job([_spec(0), _spec(1)])
        queue.submit(job)
        claimed = queue.claim("t-w0")
        queue.cancel(claimed.job_id)  # running: drops the cooperative marker
        scheduler._run_job(claimed, "t-w0", threading.Event(), time.perf_counter())
        assert queue.get(job.job_id).state is JobState.CANCELLED
        assert "job_cancelled" in _event_names(events)


class TestInterrupt:
    def test_stop_requeues_without_consuming_the_attempt(self, scheduler, queue, events):
        job = make_job(_spec())
        queue.submit(job)
        claimed = queue.claim("t-w0")
        assert claimed.attempts == 1
        stop = threading.Event()
        stop.set()  # operator interrupt before the first spec
        scheduler._run_job(claimed, "t-w0", stop, time.perf_counter())
        requeued = queue.get(job.job_id)
        assert requeued.state is JobState.QUEUED
        assert requeued.attempts == 0  # the interrupted attempt was refunded
        assert "job_requeued" in _event_names(events)
