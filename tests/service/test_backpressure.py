"""Tests for admission control: depth caps, shed policies, store-latency gating."""

import json

import pytest

from repro import telemetry
from repro.exceptions import QueueSaturated, ServiceError
from repro.experiments.spec import ExperimentSpec
from repro.service.jobs import JobState, make_job
from repro.service.queue import AdmissionPolicy, JobQueue
from repro.sim.scenarios import ScenarioSpec


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _spec(seed=0):
    return ExperimentSpec(
        scenario=ScenarioSpec(num_devices=25, max_rounds=3, seed=seed),
        policy="fedavg-random",
    )


def _job(seed=0, priority=0):
    return make_job(_spec(seed), priority=priority)


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


class TestPolicy:
    def test_roundtrip_and_clear(self, queue):
        assert queue.admission() is None
        policy = AdmissionPolicy(max_depth=5, shed_policy="drop-lowest-priority")
        queue.set_admission(policy)
        assert queue.admission() == policy
        # A second queue instance over the same root sees the persisted policy —
        # that is how submit (another process) enforces what serve configured.
        assert JobQueue(queue.root).admission() == policy
        queue.set_admission(None)
        assert queue.admission() is None

    def test_empty_policy_clears(self, queue):
        queue.set_admission(AdmissionPolicy(max_depth=5))
        queue.set_admission(AdmissionPolicy())
        assert queue.admission() is None

    def test_validation(self):
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_depth=0)
        with pytest.raises(ServiceError):
            AdmissionPolicy(shed_policy="explode")
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_store_p95_s=0.0)


class TestDepthAdmission:
    def test_open_queue_admits(self, queue):
        assert queue.admit(_job()) is None
        queue.set_admission(AdmissionPolicy(max_depth=3))
        assert queue.admit(_job()) is None

    def test_reject_at_depth_raises_and_counts(self, queue):
        telemetry.configure(enabled=True)
        queue.set_admission(AdmissionPolicy(max_depth=2))
        queue.submit(_job(0))
        queue.submit(_job(1))
        assert queue.depth() == 2
        with pytest.raises(QueueSaturated):
            queue.admit(_job(2))
        counter = telemetry.get_registry().counter("repro_queue_saturated_total")
        assert counter.value(reason="depth") == 1

    def test_drop_lowest_priority_sheds_the_youngest_lowest(self, queue):
        queue.set_admission(
            AdmissionPolicy(max_depth=2, shed_policy="drop-lowest-priority")
        )
        old_low = queue.submit(_job(0, priority=1))
        young_low = queue.submit(_job(1, priority=1))
        shed = queue.admit(_job(2, priority=5))
        assert shed is not None and shed.job_id == young_low
        assert queue.get(young_low).state is JobState.FAILED
        assert "shed by admission control" in queue.get(young_low).error
        assert queue.get(old_low).state is JobState.QUEUED
        assert queue.depth() == 1  # Room was actually made.

    def test_drop_lowest_priority_refuses_without_a_victim(self, queue):
        queue.set_admission(
            AdmissionPolicy(max_depth=1, shed_policy="drop-lowest-priority")
        )
        queue.submit(_job(0, priority=5))
        with pytest.raises(QueueSaturated):
            queue.admit(_job(1, priority=5))  # Equal priority is never shed.
        with pytest.raises(QueueSaturated):
            queue.admit(_job(2, priority=3))


class TestStoreLatencyAdmission:
    def test_slow_store_refuses_even_when_shallow(self, queue):
        telemetry.configure(enabled=True)
        queue.set_admission(AdmissionPolicy(max_store_p95_s=0.5))
        assert queue.depth() == 0
        with pytest.raises(QueueSaturated):
            queue.admit(_job(), store_p95_s=1.2)
        counter = telemetry.get_registry().counter("repro_queue_saturated_total")
        assert counter.value(reason="store-latency") == 1

    def test_fast_or_unknown_store_admits(self, queue):
        queue.set_admission(AdmissionPolicy(max_store_p95_s=0.5))
        assert queue.admit(_job(), store_p95_s=0.1) is None
        assert queue.admit(_job(), store_p95_s=None) is None


class TestSaturatedGauge:
    def test_gauge_tracks_saturation(self, queue):
        registry = telemetry.MetricsRegistry(enabled=True)
        queue.set_admission(AdmissionPolicy(max_depth=1))
        queue.export_gauges(registry)
        assert registry.gauge("repro_queue_saturated").value() == 0.0
        queue.submit(_job())
        queue.export_gauges(registry)
        assert registry.gauge("repro_queue_saturated").value() == 1.0


class TestBackpressureCLI:
    def _submit(self, root, *extra):
        from repro.cli import main

        return main(
            ["submit", "--devices", "20", "--rounds", "2", "--root", str(root), *extra]
        )

    def test_serve_persists_policy_and_submit_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "svc"
        assert (
            main(
                ["serve", "--workers", "1", "--drain", "--quiet", "--no-webhooks",
                 "--root", str(root), "--max-depth", "1"]
            )
            == 0
        )
        policy = JobQueue(root / "queue").admission()
        assert policy is not None and policy.max_depth == 1
        assert self._submit(root, "--seed", "1") == 0
        assert self._submit(root, "--seed", "2") == 3  # Saturated: typed exit code.
        err = capsys.readouterr().err
        assert "admission limit" in err
        # The refusal is visible in the event stream and in status.
        events = (root / "events.jsonl").read_text()
        assert "queue_saturated" in events
        assert main(["status", "--json", "--root", str(root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["admission"]["max_depth"] == 1

    def test_max_depth_zero_clears(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "svc"
        assert (
            main(
                ["serve", "--workers", "1", "--drain", "--quiet", "--no-webhooks",
                 "--root", str(root), "--max-depth", "1"]
            )
            == 0
        )
        assert (
            main(
                ["serve", "--workers", "1", "--drain", "--quiet", "--no-webhooks",
                 "--root", str(root), "--max-depth", "0"]
            )
            == 0
        )
        capsys.readouterr()
        assert JobQueue(root / "queue").admission() is None
        assert self._submit(root, "--seed", "1") == 0
        assert self._submit(root, "--seed", "2") == 0  # No cap any more.
