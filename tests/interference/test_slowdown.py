"""Tests for the interference slowdown model."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.interference.slowdown import SlowdownModel
from repro.devices.specs import MI8_PRO, MOTO_X_FORCE


@pytest.fixture
def model():
    return SlowdownModel()


class TestSlowdownModel:
    def test_no_corunner_means_no_slowdown(self, model):
        assert model.compute_slowdown(0.0, 0.0, "cpu") == pytest.approx(1.0)
        assert model.memory_slowdown(0.0, 0.0, "cpu") == pytest.approx(1.0)

    @given(cpu=st.floats(0, 1), mem=st.floats(0, 1))
    def test_slowdowns_at_least_one(self, cpu, mem):
        model = SlowdownModel()
        assert model.compute_slowdown(cpu, mem, "cpu") >= 1.0
        assert model.compute_slowdown(cpu, mem, "gpu") >= 1.0
        assert model.memory_slowdown(cpu, mem, "cpu") >= 1.0
        assert model.memory_slowdown(cpu, mem, "gpu") >= 1.0

    def test_cpu_suffers_more_than_gpu(self, model):
        """Paper Section 6.2: under interference the optimal target shifts CPU -> GPU."""
        cpu = model.compute_slowdown(0.6, 0.4, "cpu")
        gpu = model.compute_slowdown(0.6, 0.4, "gpu")
        assert cpu > gpu

    def test_slowdown_monotone_in_corunner_intensity(self, model):
        light = model.cpu_compute_slowdown(0.2, 0.1)
        heavy = model.cpu_compute_slowdown(0.8, 0.6)
        assert heavy > light

    def test_high_end_tolerates_interference_better(self, model):
        """Paper Section 3.2: high-end devices absorb the same co-runner with less impact."""
        high = model.cpu_compute_slowdown(0.5, 0.3, capability_gflops=MI8_PRO.cpu.peak_gflops)
        low = model.cpu_compute_slowdown(
            0.5, 0.3, capability_gflops=MOTO_X_FORCE.cpu.peak_gflops
        )
        assert high < low

    def test_unknown_target(self, model):
        with pytest.raises(ConfigurationError):
            model.compute_slowdown(0.1, 0.1, "npu")
        with pytest.raises(ConfigurationError):
            model.memory_slowdown(0.1, 0.1, "npu")

    def test_out_of_range_utilisation(self, model):
        with pytest.raises(ConfigurationError):
            model.compute_slowdown(1.2, 0.0, "cpu")

    def test_invalid_capability(self, model):
        with pytest.raises(ConfigurationError):
            model.cpu_compute_slowdown(0.5, 0.5, capability_gflops=0.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            SlowdownModel(cpu_contention_weight=-1.0)
