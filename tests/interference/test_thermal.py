"""Tests for the thermal throttling model."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.interference.thermal import ThermalModel


class TestThermalModel:
    def test_no_throttle_within_budget(self):
        model = ThermalModel(sustainable_power_watt=4.0)
        assert model.throttle_slowdown(3.9) == pytest.approx(1.0)
        assert model.throttle_slowdown(4.0) == pytest.approx(1.0)

    def test_throttle_grows_with_excess_power(self):
        model = ThermalModel(sustainable_power_watt=4.0, throttle_sensitivity=0.1)
        assert model.throttle_slowdown(5.0) == pytest.approx(1.1)
        assert model.throttle_slowdown(6.0) == pytest.approx(1.2)

    @given(power=st.floats(0, 20))
    def test_slowdown_at_least_one(self, power):
        assert ThermalModel().throttle_slowdown(power) >= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(sustainable_power_watt=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel(throttle_sensitivity=-0.1)
        with pytest.raises(ConfigurationError):
            ThermalModel().throttle_slowdown(-1.0)

    def test_budget_property(self):
        assert ThermalModel(sustainable_power_watt=3.5).sustainable_power_watt == 3.5
