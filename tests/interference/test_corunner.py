"""Tests for the synthetic co-running application generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.interference.corunner import (
    CoRunnerProfile,
    InterferenceGenerator,
    InterferenceScenario,
    WEB_BROWSING_PROFILE,
)


class TestCoRunnerProfile:
    def test_web_browsing_profile_means(self):
        assert 0.3 < WEB_BROWSING_PROFILE.mean_cpu_util < 0.6
        assert 0.2 < WEB_BROWSING_PROFILE.mean_mem_util < 0.5

    def test_samples_bounded(self, rng):
        for _ in range(100):
            cpu, mem = WEB_BROWSING_PROFILE.sample(rng)
            assert 0.0 <= cpu <= 1.0
            assert 0.0 <= mem <= 1.0

    def test_invalid_profile(self):
        with pytest.raises(ConfigurationError):
            CoRunnerProfile("bad", cpu_alpha=0.0, cpu_beta=1.0, mem_alpha=1.0, mem_beta=1.0)


class TestInterferenceGenerator:
    def test_none_scenario_produces_no_interference(self, rng):
        generator = InterferenceGenerator(InterferenceScenario.NONE)
        samples = generator.sample(rng, 50)
        assert all(not sample.active for sample in samples)

    def test_scenario_from_string(self):
        generator = InterferenceGenerator("heavy")
        assert generator.scenario is InterferenceScenario.HEAVY
        assert generator.active_fraction == pytest.approx(0.9)

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            InterferenceGenerator("extreme")

    def test_moderate_scenario_fraction(self, rng):
        generator = InterferenceGenerator(InterferenceScenario.MODERATE)
        samples = generator.sample(rng, 5000)
        active = np.mean([sample.active for sample in samples])
        assert 0.4 < active < 0.6

    def test_active_fraction_override(self, rng):
        generator = InterferenceGenerator(InterferenceScenario.NONE, active_fraction=1.0)
        samples = generator.sample(rng, 20)
        assert all(sample.active for sample in samples)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            InterferenceGenerator(active_fraction=1.5)

    def test_invalid_device_count(self, rng):
        with pytest.raises(ConfigurationError):
            InterferenceGenerator().sample(rng, 0)

    def test_determinism(self):
        generator = InterferenceGenerator(InterferenceScenario.MODERATE)
        first = generator.sample(np.random.default_rng(9), 30)
        second = generator.sample(np.random.default_rng(9), 30)
        assert [s.co_cpu_util for s in first] == [s.co_cpu_util for s in second]
