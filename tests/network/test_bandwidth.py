"""Tests for the bandwidth and signal-strength models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.network.bandwidth import (
    BAD_NETWORK_THRESHOLD_MBPS,
    BandwidthModel,
    NetworkScenario,
    SignalStrength,
    signal_from_bandwidth,
)


class TestSignalMapping:
    @given(bandwidth=st.floats(min_value=0.1, max_value=500.0))
    def test_signal_is_monotone_in_bandwidth(self, bandwidth):
        signal = signal_from_bandwidth(bandwidth)
        if bandwidth <= BAD_NETWORK_THRESHOLD_MBPS:
            assert signal is SignalStrength.WEAK
        elif bandwidth > 60.0:
            assert signal is SignalStrength.STRONG
        else:
            assert signal is SignalStrength.MODERATE


class TestBandwidthModel:
    def test_scenario_from_string(self):
        model = BandwidthModel("weak")
        assert model.scenario is NetworkScenario.WEAK

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            BandwidthModel("5g-ultra")

    def test_samples_respect_minimum(self, rng):
        model = BandwidthModel(NetworkScenario.WEAK)
        samples = model.sample(rng, 500)
        assert len(samples) == 500
        assert samples.min() >= model.distribution.min_mbps

    def test_scenario_means_ordered(self, rng):
        stable = BandwidthModel(NetworkScenario.STABLE).sample(rng, 2000).mean()
        variable = BandwidthModel(NetworkScenario.VARIABLE).sample(rng, 2000).mean()
        weak = BandwidthModel(NetworkScenario.WEAK).sample(rng, 2000).mean()
        assert stable > variable > weak

    def test_stable_scenario_rarely_bad(self, rng):
        model = BandwidthModel(NetworkScenario.STABLE)
        samples = model.sample(rng, 2000)
        bad_fraction = np.mean([model.is_bad(value) for value in samples])
        assert bad_fraction < 0.01

    def test_weak_scenario_mostly_bad(self, rng):
        model = BandwidthModel(NetworkScenario.WEAK)
        samples = model.sample(rng, 2000)
        bad_fraction = np.mean([model.is_bad(value) for value in samples])
        assert bad_fraction > 0.95

    def test_invalid_sample_count(self, rng):
        with pytest.raises(ConfigurationError):
            BandwidthModel().sample(rng, 0)

    def test_determinism_with_seeded_generator(self):
        model = BandwidthModel(NetworkScenario.VARIABLE)
        first = model.sample(np.random.default_rng(3), 10)
        second = model.sample(np.random.default_rng(3), 10)
        assert np.allclose(first, second)
