"""Tests for the communication time/energy model (paper Eq. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.network.channel import (
    CommunicationModel,
    DOWNLINK_BANDWIDTH_FACTOR,
    RX_POWER_WATT,
    TX_POWER_WATT,
)
from repro.network.bandwidth import SignalStrength


@pytest.fixture
def model():
    return CommunicationModel()


class TestTransferTime:
    def test_basic_transfer_time(self, model):
        # 10 MB at 80 Mbit/s with 10 % protocol overhead.
        expected = 10 * 8 * 1.10 / 80
        assert model.transfer_time_s(10, 80) == pytest.approx(expected)

    def test_invalid_inputs(self, model):
        with pytest.raises(ConfigurationError):
            model.transfer_time_s(-1, 80)
        with pytest.raises(ConfigurationError):
            model.transfer_time_s(1, 0)

    @given(size=st.floats(0.1, 100), bandwidth=st.floats(1, 500))
    def test_time_scales_linearly_with_size(self, size, bandwidth):
        model = CommunicationModel()
        single = model.transfer_time_s(size, bandwidth)
        double = model.transfer_time_s(2 * size, bandwidth)
        assert double == pytest.approx(2 * single, rel=1e-9)


class TestCommunicationEstimate:
    def test_download_faster_than_upload(self, model):
        estimate = model.estimate(model_size_mb=6.4, bandwidth_mbps=50)
        assert estimate.download_time_s == pytest.approx(
            estimate.upload_time_s / DOWNLINK_BANDWIDTH_FACTOR
        )
        assert estimate.total_time_s == pytest.approx(
            estimate.upload_time_s + estimate.download_time_s
        )

    def test_signal_derived_from_bandwidth(self, model):
        assert model.estimate(6.4, 90).signal is SignalStrength.STRONG
        assert model.estimate(6.4, 20).signal is SignalStrength.WEAK

    def test_weak_signal_costs_much_more_energy(self, model):
        """Paper Section 3.2: weak signal increases communication cost ~4.3x on average."""
        strong = model.estimate(6.4, 90)
        weak = model.estimate(6.4, 20)
        assert weak.energy_j > 3.0 * strong.energy_j

    def test_explicit_signal_override(self, model):
        estimate = model.estimate(6.4, 90, signal=SignalStrength.WEAK)
        assert estimate.signal is SignalStrength.WEAK
        assert estimate.energy_j == pytest.approx(
            TX_POWER_WATT[SignalStrength.WEAK] * estimate.upload_time_s
            + RX_POWER_WATT[SignalStrength.WEAK] * estimate.download_time_s
        )

    def test_tx_power_monotone_in_signal_degradation(self):
        assert (
            TX_POWER_WATT[SignalStrength.STRONG]
            < TX_POWER_WATT[SignalStrength.MODERATE]
            < TX_POWER_WATT[SignalStrength.WEAK]
        )

    def test_protocol_overhead_validation(self):
        with pytest.raises(ConfigurationError):
            CommunicationModel(protocol_overhead=0.9)
