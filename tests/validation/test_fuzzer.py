"""Tests for the seeded scenario fuzzer: coverage, determinism and violation surfacing."""

import numpy as np

from repro.validation.fuzzer import (
    MAX_FUZZ_DEVICES,
    MAX_FUZZ_ROUNDS,
    MIN_FUZZ_ROUNDS,
    FuzzFailure,
    FuzzReport,
    run_fuzz,
    sample_spec,
)
from repro.validation.invariants import InvariantViolation


class TestSampleSpec:
    def test_specs_validate_and_respect_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            spec = sample_spec(rng)  # .validate() inside would raise on a bad draw.
            scenario = spec.scenario
            assert scenario.num_devices <= MAX_FUZZ_DEVICES
            assert MIN_FUZZ_ROUNDS <= scenario.max_rounds <= MAX_FUZZ_ROUNDS
            assert spec.n_seeds == 1 and not spec.stop_at_convergence

    def test_sampling_covers_the_dynamics_axes(self):
        rng = np.random.default_rng(1)
        specs = [sample_spec(rng) for _ in range(60)]
        assert len({spec.policy for spec in specs}) > 3
        assert len({spec.scenario.availability for spec in specs}) > 2
        assert any(spec.scenario.dropout_rate > 0 for spec in specs)
        assert any(spec.scenario.churn_rate > 0 for spec in specs)
        assert any(spec.scenario.tier_dropout_rates for spec in specs)
        assert any(spec.scenario.vectorized_sampling for spec in specs)

    def test_sampling_is_deterministic_per_seed(self):
        first = [sample_spec(np.random.default_rng(7)) for _ in range(1)][0]
        second = [sample_spec(np.random.default_rng(7)) for _ in range(1)][0]
        assert first == second


class TestRunFuzz:
    def test_count_budget_runs_clean(self):
        report = run_fuzz(count=8, seed=3)
        assert report.ok
        assert report.scenarios_run == 8
        assert report.rounds_checked >= 8 * MIN_FUZZ_ROUNDS
        assert "OK" in report.format()

    def test_time_budget_runs_at_least_one_scenario(self):
        report = run_fuzz(budget_s=0.0, seed=3)
        assert report.scenarios_run >= 1

    def test_same_seed_same_stream(self):
        first = run_fuzz(count=4, seed=11)
        second = run_fuzz(count=4, seed=11)
        assert first.ok and second.ok
        assert first.rounds_checked == second.rounds_checked

    def test_crash_is_surfaced_as_violation_not_abort(self, monkeypatch):
        # Any exception — not just ReproError — must become a finding with the
        # reproducing spec label, never abort the campaign.
        from repro.validation import fuzzer as fuzzer_module

        def exploding_build(spec, round_observer=None):
            raise ValueError("unguarded numpy edge case")

        monkeypatch.setattr(fuzzer_module, "build_simulation", exploding_build)
        report = run_fuzz(count=3, seed=0)
        assert report.scenarios_run == 3
        assert not report.ok
        assert all(f.violation.invariant == "crash" for f in report.failures)
        assert "ValueError" in report.failures[0].violation.message

    def test_report_serialises_failures(self):
        report = FuzzReport(seed=0)
        report.scenarios_run = 1
        report.failures.append(
            FuzzFailure(
                scenario_index=0,
                label="autofl/cnn-mnist",
                violation=InvariantViolation(
                    invariant="energy-accounting", message="off", round_index=2
                ),
            )
        )
        assert not report.ok
        payload = report.to_dict()
        assert payload["failures"][0]["invariant"] == "energy-accounting"
        assert payload["failures"][0]["round"] == 2
        assert "VIOLATION" in report.format()
