"""Tests for the invariant checkers: clean runs audit green, corruption is caught."""

import dataclasses

import numpy as np
import pytest

from repro.devices.device import ExecutionTarget
from repro.devices.energy import DeviceEnergy, RoundEnergyAccount
from repro.exceptions import ValidationError
from repro.experiments.runner import build_simulation
from repro.experiments.spec import ExperimentSpec
from repro.sim.context import SelectionDecision
from repro.sim.results import DeviceRoundOutcome, RoundExecution, RoundRecord
from repro.sim.round_engine import RoundEngine
from repro.sim.scenarios import ScenarioSpec
from repro.validation.invariants import (
    InvariantAuditor,
    InvariantViolation,
    ValidationReport,
    check_batch_execution,
    check_round_execution,
    check_round_record,
    check_simulation_result,
)

FLAKY = ExperimentSpec(
    scenario=ScenarioSpec(
        num_devices=30,
        max_rounds=6,
        seed=5,
        setting="S4",
        availability="bernoulli",
        dropout_rate=0.2,
        slow_fault_rate=0.1,
    ),
    policy="autofl",
    stop_at_convergence=False,
)


def _record(**overrides) -> RoundRecord:
    base = dict(
        round_index=0,
        selected_ids=(1, 2, 3),
        dropped_ids=(2,),
        targets={},
        round_time_s=10.0,
        participant_energy_j=50.0,
        global_energy_j=80.0,
        accuracy=0.5,
        accuracy_improvement=0.1,
        failed_ids=(3,),
        num_online=10,
    )
    base.update(overrides)
    return RoundRecord(**base)


class TestCheckBatchExecution:
    """The vectorised engine's real output must satisfy every identity; hand-corrupted
    copies must not."""

    @pytest.fixture
    def batch(self, small_environment):
        engine = RoundEngine(small_environment)
        condition_arrays = small_environment.sample_condition_arrays()
        decision = SelectionDecision(participants=small_environment.fleet.device_ids[:8])
        return engine.execute_batch(decision, condition_arrays)

    def test_clean_execution_has_no_violations(self, batch):
        assert check_batch_execution(batch) == []

    def test_scalar_view_has_no_violations(self, batch):
        assert check_round_execution(batch.to_execution()) == []

    def test_corrupted_round_time_detected(self, batch):
        batch.round_time_s = batch.round_time_s * 2
        names = {violation.invariant for violation in check_batch_execution(batch)}
        assert "round-time" in names

    def test_idle_energy_on_selected_row_detected(self, batch):
        rows = np.isin(batch.fleet_device_ids, batch.selected_ids)
        batch.idle_j[rows] = 1.0
        names = {violation.invariant for violation in check_batch_execution(batch)}
        assert "idle-accounting" in names

    def test_negative_energy_detected(self, batch):
        batch.compute_j[0] = -1.0
        names = {violation.invariant for violation in check_batch_execution(batch)}
        assert "finite-nonnegative" in names

    def test_offline_idle_energy_detected(self, batch):
        online_mask = np.ones(len(batch.fleet_device_ids), dtype=bool)
        offline_row = len(online_mask) - 1  # Not among the selected first 8 rows.
        online_mask[offline_row] = False
        batch.idle_j[offline_row] = 3.0
        names = {
            violation.invariant
            for violation in check_batch_execution(batch, online_mask=online_mask)
        }
        assert "offline-idle" in names

    def test_selection_exceeding_online_population_detected(self, batch):
        online_mask = np.zeros(len(batch.fleet_device_ids), dtype=bool)
        online_mask[:2] = True  # Only 2 online, 8 selected.
        batch.idle_j[:] = 0.0  # Isolate the selection-bound invariant.
        names = {
            violation.invariant
            for violation in check_batch_execution(batch, online_mask=online_mask)
        }
        assert "selection-bound" in names

    def test_failed_participant_transmitting_detected(self, batch):
        batch.failed[0] = True
        batch.communication_j[0] = 5.0
        names = {violation.invariant for violation in check_batch_execution(batch)}
        assert "failure-semantics" in names


class TestCheckRoundExecution:
    def _outcome(self, device_id, **overrides):
        base = dict(
            device_id=device_id,
            target=ExecutionTarget(processor="cpu", vf_step=0),
            compute_time_s=4.0,
            communication_time_s=1.0,
            energy=DeviceEnergy(compute_j=8.0, communication_j=2.0, idle_j=0.0),
        )
        base.update(overrides)
        return DeviceRoundOutcome(**base)

    def _execution(self, outcomes, round_time_s=5.0):
        account = RoundEnergyAccount()
        for device_id, outcome in outcomes.items():
            account.record(device_id, outcome.energy)
        return RoundExecution(outcomes=outcomes, round_time_s=round_time_s, energy=account)

    def test_consistent_execution_passes(self):
        outcomes = {1: self._outcome(1), 2: self._outcome(2)}
        assert check_round_execution(self._execution(outcomes)) == []

    def test_account_outcome_mismatch_detected(self):
        outcomes = {1: self._outcome(1)}
        execution = self._execution(outcomes)
        execution.energy.record(1, DeviceEnergy(compute_j=999.0))
        names = {violation.invariant for violation in check_round_execution(execution)}
        assert "energy-accounting" in names

    def test_round_time_mismatch_detected(self):
        outcomes = {1: self._outcome(1)}
        execution = self._execution(outcomes, round_time_s=123.0)
        names = {violation.invariant for violation in check_round_execution(execution)}
        assert "round-time" in names

    def test_non_selected_device_with_active_energy_detected(self):
        outcomes = {1: self._outcome(1)}
        execution = self._execution(outcomes, round_time_s=5.0)
        execution.energy.record(7, DeviceEnergy(compute_j=1.0))
        names = {violation.invariant for violation in check_round_execution(execution)}
        assert "energy-accounting" in names


class TestCheckRoundRecord:
    def test_consistent_record_passes(self):
        assert check_round_record(_record()) == []

    def test_dropped_failed_overlap_detected(self):
        violations = check_round_record(_record(dropped_ids=(2, 3)))
        assert {violation.invariant for violation in violations} == {"id-partition"}

    def test_accuracy_out_of_range_detected(self):
        violations = check_round_record(_record(accuracy=1.5))
        assert {violation.invariant for violation in violations} == {"metric-range"}

    def test_participant_energy_above_global_detected(self):
        violations = check_round_record(_record(participant_energy_j=100.0))
        assert {violation.invariant for violation in violations} == {"energy-accounting"}

    def test_selection_above_online_population_detected(self):
        violations = check_round_record(_record(num_online=2))
        assert {violation.invariant for violation in violations} == {"selection-bound"}

    def test_online_above_fleet_size_detected(self):
        violations = check_round_record(_record(num_online=10), num_devices=5)
        assert {violation.invariant for violation in violations} == {"selection-bound"}


class TestCheckSimulationResult:
    def test_real_trajectory_passes(self):
        result = build_simulation(FLAKY).run()
        assert check_simulation_result(result, num_devices=30) == []

    def test_out_of_order_rounds_detected(self):
        result = build_simulation(FLAKY).run()
        result.records.reverse()
        names = {
            violation.invariant for violation in check_simulation_result(result)
        }
        assert "trajectory" in names

    def test_bad_converged_round_detected(self):
        result = build_simulation(FLAKY).run()
        result.converged_round = 999
        names = {
            violation.invariant for violation in check_simulation_result(result)
        }
        assert "trajectory" in names

    def test_empty_result_detected(self):
        result = build_simulation(FLAKY).run()
        result.records = []
        assert check_simulation_result(result)


class TestInvariantAuditor:
    def test_audits_every_round_of_a_dynamic_run(self):
        auditor = InvariantAuditor(num_devices=30)
        result = build_simulation(FLAKY, round_observer=auditor).run()
        report = auditor.audit_result(result)
        assert report.ok
        assert report.rounds_checked == FLAKY.scenario.max_rounds
        assert report.results_checked == 1

    def test_static_fleet_run_audits_green_too(self):
        spec = dataclasses.replace(
            FLAKY,
            scenario=ScenarioSpec(num_devices=30, max_rounds=4, seed=2, setting="S4"),
        )
        auditor = InvariantAuditor(num_devices=30)
        result = build_simulation(spec, round_observer=auditor).run()
        assert auditor.audit_result(result).ok

    def test_raise_on_violation_aborts(self):
        report = ValidationReport()
        report.extend([InvariantViolation(invariant="x", message="boom", round_index=3)])
        with pytest.raises(ValidationError, match="boom"):
            report.raise_if_failed()

    def test_report_formats_round_and_invariant(self):
        violation = InvariantViolation(
            invariant="energy-accounting", message="off by one joule", round_index=7
        )
        assert "round 7" in str(violation)
        assert "energy-accounting" in str(violation)
