"""Tests for the golden-trajectory store: record/check/diff and schema guards."""

import dataclasses
import json

import pytest

from repro.exceptions import ValidationError
from repro.experiments.spec import ExperimentSpec
from repro.sim.scenarios import ScenarioSpec
from repro.validation.golden import (
    GOLDEN_MAX_ROUNDS,
    GOLDEN_POLICY,
    GOLDEN_PRESETS,
    GoldenStore,
    diff_trajectories,
    golden_spec,
    run_trajectory,
    trajectory_rows,
)

#: A fast spec for store-level tests (the shipped presets are covered by the CLI test
#: and CI golden-check, which run against the committed fixtures).
SMALL = ExperimentSpec(
    scenario=ScenarioSpec(num_devices=30, max_rounds=4, seed=9, setting="S4"),
    policy="fedavg-random",
    stop_at_convergence=False,
)


@pytest.fixture
def store(tmp_path):
    return GoldenStore(tmp_path / "goldens")


class TestRecordAndCheck:
    def test_record_then_check_is_bit_exact(self, store):
        golden = store.record("small", SMALL)
        assert golden.num_rounds == 4
        assert store.path_for("small").is_file()
        report = store.check("small")
        assert report.ok
        assert report.rounds_compared == 4
        assert report.first_divergence is None
        assert "OK" in report.format()

    def test_names_lists_recorded_goldens(self, store):
        assert store.names() == []
        store.record("small", SMALL)
        assert store.names() == ["small"]

    def test_check_detects_drift_naming_round_and_field(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        row = json.loads(lines[2])  # Round 1.
        row["global_energy_j"] += 1e-9
        lines[2] = json.dumps(row, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        report = store.check("small")
        assert not report.ok
        assert report.first_divergence.round_index == 1
        assert report.first_divergence.field == "global_energy_j"
        assert "DRIFT" in report.format()
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["divergences"][0]["field"] == "global_energy_j"

    def test_diff_without_rerun(self, store):
        golden = store.record("small", SMALL)
        fresh = run_trajectory(SMALL)
        assert store.diff(golden, fresh).ok
        shifted = run_trajectory(
            dataclasses.replace(
                SMALL, scenario=dataclasses.replace(SMALL.scenario, seed=10)
            )
        )
        drift = store.diff(golden, shifted)
        assert not drift.ok

    def test_trajectory_length_drift_detected(self):
        rows = [{"round": 0, "accuracy": 0.5}]
        divergences = diff_trajectories(rows, [])
        assert divergences[0].field == "num_rounds"


class TestSchemaAndCorruptionGuards:
    def test_missing_golden_names_the_store_and_recorded_names(self, store):
        with pytest.raises(ValidationError, match="no golden recorded for 'ghost'"):
            store.load("ghost")

    def test_stale_golden_schema_reports_both_versions(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["golden_schema"] = 0
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match=r"golden schema 0.*reads golden schema 1"):
            store.load("small")

    def test_stale_spec_schema_reports_both_versions(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec_schema"] = 2
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match=r"spec schema 2.*spec schema 3"):
            store.load("small")

    def test_edited_spec_payload_breaks_the_hash_seal(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec"]["scenario"]["seed"] = 12345
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="does not match its own spec payload"):
            store.load("small")

    def test_header_without_spec_payload_detected(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["spec"]
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="no spec payload"):
            store.load("small")

    def test_truncated_file_detected(self, store):
        store.record("small", SMALL)
        path = store.path_for("small")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValidationError, match="promises 4 rounds"):
            store.load("small")

    def test_corrupt_json_detected(self, store):
        path = store.path_for("small")
        path.parent.mkdir(parents=True)
        path.write_text("not json\n")
        with pytest.raises(ValidationError, match="corrupt"):
            store.load("small")

    def test_multi_seed_specs_rejected(self):
        with pytest.raises(ValidationError, match="single-seed"):
            run_trajectory(dataclasses.replace(SMALL, n_seeds=3))


class TestGoldenSpecs:
    def test_shipped_preset_specs_resolve_and_cap_rounds(self):
        for preset in GOLDEN_PRESETS:
            spec = golden_spec(preset)
            assert spec.policy == GOLDEN_POLICY
            assert spec.scenario.max_rounds == GOLDEN_MAX_ROUNDS
            assert spec.n_seeds == 1
            assert not spec.stop_at_convergence

    def test_rows_carry_the_pinned_fields(self):
        result = run_trajectory(SMALL)
        rows = trajectory_rows(result)
        assert len(rows) == 4
        for expected_field in (
            "round",
            "selection_sha",
            "round_time_s",
            "participant_energy_j",
            "global_energy_j",
            "accuracy",
            "num_selected",
            "num_dropped",
            "num_failed",
            "num_online",
        ):
            assert expected_field in rows[0]

    def test_shipped_golden_fixtures_are_recorded(self):
        # The committed fixtures the CI golden-check runs against must exist and load.
        from pathlib import Path

        store = GoldenStore(Path(__file__).parents[2] / "goldens")
        for preset in GOLDEN_PRESETS:
            golden = store.load(preset)
            assert golden.num_rounds == GOLDEN_MAX_ROUNDS
            assert golden.spec == golden_spec(preset)
