"""Equivalence and regression tests for the vectorised round-engine path.

The batched engine must agree with the scalar reference implementation
(`estimate_device` / `execute`) within 1e-9 across randomised fleets, execution targets
and runtime conditions — these property-style tests are what lets every future perf
change to the array path be validated mechanically.
"""

import numpy as np
import pytest

from repro.devices.device import ExecutionTarget, RoundConditions
from repro.devices.energy import DeviceEnergy
from repro.devices.fleet_arrays import PROCESSOR_CODES, RoundConditionsArrays
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.results import DeviceRoundOutcome
from repro.sim.round_engine import RoundEngine, straggler_deadline
from repro.sim.scenarios import ScenarioSpec, build_environment

REL_TOL = 1e-9


def _random_environment(rng):
    spec = ScenarioSpec(
        workload=str(rng.choice(["cnn-mnist", "lstm-shakespeare", "mobilenet-imagenet"])),
        setting=str(rng.choice(["S1", "S2", "S3", "S4"])),
        interference=str(rng.choice(["none", "moderate", "heavy"])),
        network=str(rng.choice(["stable", "variable", "weak"])),
        data_distribution=str(rng.choice(["iid", "non_iid_50"])),
        num_devices=int(rng.integers(20, 60)),
        seed=int(rng.integers(0, 10_000)),
    )
    return build_environment(spec)


def _random_decision(environment, rng):
    num_participants = int(rng.integers(4, min(16, len(environment.fleet)) + 1))
    participants = [
        int(device_id)
        for device_id in rng.choice(
            environment.fleet.device_ids, size=num_participants, replace=False
        )
    ]
    targets = {}
    for device_id in participants:
        if rng.random() < 0.3:
            continue  # Exercise the default-target fallback too.
        device = environment.fleet[device_id]
        processor = str(rng.choice(["cpu", "gpu"]))
        spec = device.spec.processor(processor)
        targets[device_id] = ExecutionTarget(
            processor=processor, vf_step=int(rng.integers(0, spec.num_vf_steps))
        )
    return SelectionDecision(participants=participants, targets=targets)


def _assert_outcomes_match(scalar, batch):
    assert set(scalar.outcomes) == set(batch.outcomes)
    assert batch.round_time_s == pytest.approx(scalar.round_time_s, rel=REL_TOL)
    for device_id, expected in scalar.outcomes.items():
        actual = batch.outcomes[device_id]
        assert actual.target == expected.target
        assert actual.dropped == expected.dropped
        assert actual.compute_time_s == pytest.approx(expected.compute_time_s, rel=REL_TOL)
        assert actual.communication_time_s == pytest.approx(
            expected.communication_time_s, rel=REL_TOL
        )
        assert actual.energy.compute_j == pytest.approx(expected.energy.compute_j, rel=REL_TOL)
        assert actual.energy.communication_j == pytest.approx(
            expected.energy.communication_j, rel=REL_TOL
        )
        assert actual.energy.idle_j == pytest.approx(
            expected.energy.idle_j, rel=REL_TOL, abs=1e-12
        )
    assert set(scalar.energy.per_device) == set(batch.energy.per_device)
    for device_id, expected_energy in scalar.energy.per_device.items():
        assert batch.energy.device(device_id).total_j == pytest.approx(
            expected_energy.total_j, rel=REL_TOL, abs=1e-12
        )
    assert batch.energy.global_j == pytest.approx(scalar.energy.global_j, rel=REL_TOL)


class TestEstimateBatchEquivalence:
    @pytest.mark.parametrize("trial", range(8))
    def test_matches_scalar_reference(self, trial):
        rng = np.random.default_rng(100 + trial)
        environment = _random_environment(rng)
        engine = RoundEngine(environment)
        decision = _random_decision(environment, rng)
        conditions = environment.sample_round_conditions()
        arrays = environment.fleet_arrays
        rows = arrays.rows_for(decision.participants)
        processors = np.array(
            [
                PROCESSOR_CODES[
                    decision.target_for(
                        device_id, environment.fleet[device_id].default_target()
                    ).processor
                ]
                for device_id in decision.participants
            ],
            dtype=np.int64,
        )
        vf_steps = np.array(
            [
                decision.target_for(
                    device_id, environment.fleet[device_id].default_target()
                ).vf_step
                for device_id in decision.participants
            ],
            dtype=np.int64,
        )
        estimates = engine.estimate_batch(
            rows,
            processors,
            vf_steps,
            RoundConditionsArrays.from_mapping(decision.participants, conditions),
        )
        for i, device_id in enumerate(decision.participants):
            device = environment.fleet[device_id]
            target = decision.target_for(device_id, device.default_target())
            expected = engine.estimate_device(device, target, conditions[device_id])
            assert estimates.compute_time_s[i] == pytest.approx(
                expected.compute_time_s, rel=REL_TOL
            )
            assert estimates.communication_time_s[i] == pytest.approx(
                expected.communication_time_s, rel=REL_TOL
            )
            assert estimates.compute_j[i] == pytest.approx(
                expected.energy.compute_j, rel=REL_TOL
            )
            assert estimates.communication_j[i] == pytest.approx(
                expected.energy.communication_j, rel=REL_TOL
            )


class TestExecuteBatchEquivalence:
    @pytest.mark.parametrize("trial", range(8))
    def test_matches_scalar_execute(self, trial):
        rng = np.random.default_rng(2_000 + trial)
        environment = _random_environment(rng)
        engine = RoundEngine(environment)
        decision = _random_decision(environment, rng)
        conditions = environment.sample_round_conditions()
        scalar = engine.execute(decision, conditions)
        batch = engine.execute_batch(decision, conditions)
        assert batch.participant_ids == scalar.participant_ids
        assert batch.dropped_ids == scalar.dropped_ids
        assert batch.participant_energy_j == pytest.approx(
            scalar.participant_energy_j, rel=REL_TOL
        )
        assert batch.global_energy_j == pytest.approx(scalar.energy.global_j, rel=REL_TOL)
        _assert_outcomes_match(scalar, batch.to_execution())

    def test_accepts_fleet_wide_condition_arrays(self, small_environment):
        engine = RoundEngine(small_environment)
        condition_arrays = small_environment.sample_condition_arrays()
        conditions = condition_arrays.to_mapping(small_environment.fleet.device_ids)
        decision = SelectionDecision(participants=small_environment.fleet.device_ids[:6])
        from_mapping = engine.execute_batch(decision, conditions)
        from_arrays = engine.execute_batch(decision, condition_arrays)
        assert from_arrays.round_time_s == from_mapping.round_time_s
        assert from_arrays.global_energy_j == from_mapping.global_energy_j

    def test_straggler_truncation_matches(self, small_environment):
        engine = RoundEngine(small_environment)
        device_ids = small_environment.fleet.device_ids
        conditions = {
            device_id: RoundConditions(bandwidth_mbps=90.0) for device_id in device_ids
        }
        straggler = device_ids[0]
        conditions[straggler] = RoundConditions(bandwidth_mbps=3.0, co_cpu_util=0.9)
        decision = SelectionDecision(participants=device_ids[:8])
        scalar = engine.execute(decision, conditions)
        batch = engine.execute_batch(decision, conditions)
        assert straggler in scalar.dropped_ids
        assert batch.dropped_ids == scalar.dropped_ids
        _assert_outcomes_match(scalar, batch.to_execution())


class TestMissingConditions:
    def test_scalar_execute_raises_with_device_id(self, small_environment):
        engine = RoundEngine(small_environment)
        participants = small_environment.fleet.device_ids[:4]
        conditions = {
            device_id: RoundConditions() for device_id in participants[:-1]
        }
        with pytest.raises(SimulationError, match=str(participants[-1])):
            engine.execute(SelectionDecision(participants=participants), conditions)

    def test_batch_execute_raises_with_device_id(self, small_environment):
        engine = RoundEngine(small_environment)
        participants = small_environment.fleet.device_ids[:4]
        conditions = {
            device_id: RoundConditions() for device_id in participants[:-1]
        }
        with pytest.raises(SimulationError, match=str(participants[-1])):
            engine.execute_batch(SelectionDecision(participants=participants), conditions)


class _ZeroTimeEngine(RoundEngine):
    """Engine whose every estimate is instantaneous — the degenerate deadline case."""

    def estimate_device(self, device, target, conditions):
        return DeviceRoundOutcome(
            device_id=device.device_id,
            target=target,
            compute_time_s=0.0,
            communication_time_s=0.0,
            energy=DeviceEnergy(),
        )


class TestDegenerateStragglerDeadline:
    def test_deadline_guard_values(self):
        assert straggler_deadline(np.array([1.0, 2.0, 3.0]), 2.5) == pytest.approx(5.0)
        # Median zero but some activity: the slowest participant sets the deadline.
        assert straggler_deadline(np.array([0.0, 0.0, 0.0, 4.0]), 2.5) == pytest.approx(4.0)
        # Every outcome time zero: infinite deadline instead of the degenerate 0.0.
        assert straggler_deadline(np.array([0.0, 0.0]), 2.5) == np.inf

    def test_all_zero_times_drop_nothing(self, small_environment):
        engine = _ZeroTimeEngine(small_environment)
        decision = SelectionDecision(participants=small_environment.fleet.device_ids[:5])
        conditions = {
            device_id: RoundConditions()
            for device_id in small_environment.fleet.device_ids
        }
        execution = engine.execute(decision, conditions)
        assert execution.dropped_ids == []
        assert execution.round_time_s == 0.0
        assert np.isfinite(execution.energy.global_j)
        for outcome in execution.outcomes.values():
            assert outcome.compute_time_s == 0.0
            assert np.isfinite(outcome.energy.total_j)
