"""Aggregation-property tests for the result containers under dropouts and failures.

Covers the satellite requirement: ``RoundRecord`` / ``SimulationResult`` /
``BatchRoundExecution`` aggregates (dropped/failed ids, energy totals, the
``to_execution`` round-trip) with stragglers and mid-round failures present.
"""

import numpy as np
import pytest

from repro.devices.device import ExecutionTarget
from repro.devices.fleet_arrays import PROC_CPU
from repro.sim.results import BatchRoundExecution, RoundRecord, SimulationResult


def _batch_execution() -> BatchRoundExecution:
    """Three selected devices out of a five-device fleet: one retained (id 4), one
    straggler-dropped (id 2), one failed mid-round (id 0)."""
    return BatchRoundExecution(
        selected_ids=np.array([4, 2, 0]),
        processors=np.full(3, PROC_CPU),
        vf_steps=np.array([2, 1, 0]),
        compute_time_s=np.array([2.0, 5.0, 1.5]),
        communication_time_s=np.array([1.0, 2.0, 0.0]),
        compute_j=np.array([10.0, 25.0, 7.5]),
        communication_j=np.array([4.0, 8.0, 0.0]),
        waiting_j=np.array([0.5, 0.0, 0.0]),
        dropped=np.array([False, True, False]),
        round_time_s=3.0,
        fleet_device_ids=np.array([0, 1, 2, 3, 4]),
        idle_j=np.array([0.0, 6.0, 0.0, 6.0, 0.0]),
        failed=np.array([False, False, True]),
    )


class TestBatchRoundExecution:
    def test_id_partitions_are_disjoint_and_sorted(self):
        execution = _batch_execution()
        assert execution.participant_ids == [4]
        assert execution.dropped_ids == [2]
        assert execution.failed_ids == [0]

    def test_energy_totals(self):
        execution = _batch_execution()
        assert execution.participant_energy_j == pytest.approx(10 + 25 + 7.5 + 4 + 8 + 0.5)
        assert execution.idle_energy_j == pytest.approx(12.0)
        assert execution.global_energy_j == pytest.approx(
            execution.participant_energy_j + 12.0
        )

    def test_failed_defaults_to_all_false(self):
        execution = _batch_execution()
        plain = BatchRoundExecution(
            selected_ids=execution.selected_ids,
            processors=execution.processors,
            vf_steps=execution.vf_steps,
            compute_time_s=execution.compute_time_s,
            communication_time_s=execution.communication_time_s,
            compute_j=execution.compute_j,
            communication_j=execution.communication_j,
            waiting_j=execution.waiting_j,
            dropped=execution.dropped,
            round_time_s=execution.round_time_s,
            fleet_device_ids=execution.fleet_device_ids,
            idle_j=execution.idle_j,
        )
        assert not plain.failed.any()
        assert plain.participant_ids == [0, 4]

    def test_to_execution_roundtrip_preserves_aggregates(self):
        batch = _batch_execution()
        scalar = batch.to_execution()
        assert scalar.participant_ids == batch.participant_ids
        assert scalar.dropped_ids == batch.dropped_ids
        assert scalar.failed_ids == batch.failed_ids
        assert scalar.round_time_s == batch.round_time_s
        assert scalar.participant_energy_j == pytest.approx(batch.participant_energy_j)
        assert scalar.energy.global_j == pytest.approx(batch.global_energy_j)
        # Per-device flags and energies survive the conversion.
        assert scalar.outcomes[0].failed and not scalar.outcomes[0].dropped
        assert scalar.outcomes[2].dropped and not scalar.outcomes[2].failed
        assert scalar.outcomes[4].energy.idle_j == pytest.approx(0.5)  # waiting energy
        assert scalar.energy.device(1).idle_j == pytest.approx(6.0)


def _record(index, accuracy=0.5, dropped=(), failed=(), num_online=None):
    return RoundRecord(
        round_index=index,
        selected_ids=(0, 1, 2, 3),
        dropped_ids=tuple(dropped),
        targets={0: ExecutionTarget("cpu", 1)},
        round_time_s=2.0,
        participant_energy_j=50.0,
        global_energy_j=80.0,
        accuracy=accuracy,
        accuracy_improvement=0.01,
        failed_ids=tuple(failed),
        num_online=num_online,
    )


class TestRoundRecord:
    def test_num_aggregated_excludes_drops_and_failures(self):
        record = _record(0, dropped=(1,), failed=(2, 3))
        assert record.num_aggregated == 1

    def test_defaults_describe_static_fleet(self):
        record = _record(0)
        assert record.failed_ids == ()
        assert record.num_online is None
        assert record.num_aggregated == 4


class TestSimulationResultDynamics:
    def test_failure_and_online_aggregates(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        result.append(_record(0, dropped=(1,), failed=(2,), num_online=25))
        result.append(_record(1, failed=(0, 3), num_online=27))
        assert result.total_straggler_drops == 1
        assert result.total_fault_failures == 3
        assert result.online_history == [25, 27]
        assert result.mean_num_online == pytest.approx(26.0)

    def test_static_fleet_reports_no_online_counts(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        result.append(_record(0))
        assert result.online_history == [None]
        assert result.mean_num_online is None
        assert result.total_fault_failures == 0
