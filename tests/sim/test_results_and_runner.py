"""Tests for result containers and the simulation runner."""

import pytest

from repro.core.selection import RandomPolicy
from repro.devices.device import ExecutionTarget
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.results import RoundRecord, SimulationResult
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import build_surrogate_backend


def _record(index, accuracy, round_time=2.0, participant=50.0, global_j=80.0):
    return RoundRecord(
        round_index=index,
        selected_ids=(0, 1),
        dropped_ids=(),
        targets={0: ExecutionTarget("cpu", 1)},
        round_time_s=round_time,
        participant_energy_j=participant,
        global_energy_j=global_j,
        accuracy=accuracy,
        accuracy_improvement=0.01,
    )


class TestSimulationResult:
    def test_aggregates(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        result.append(_record(0, 0.5))
        result.append(_record(1, 0.9, round_time=3.0))
        assert result.num_rounds == 2
        assert result.final_accuracy == pytest.approx(0.9)
        assert result.total_time_s == pytest.approx(5.0)
        assert result.total_global_energy_j == pytest.approx(160.0)
        assert result.mean_round_time_s == pytest.approx(2.5)
        assert result.accuracy_history == [0.5, 0.9]

    def test_summary_truncates_at_convergence(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        for index, accuracy in enumerate([0.5, 0.96, 0.97, 0.97]):
            result.append(_record(index, accuracy))
        result.converged_round = 1
        summary = result.summary()
        assert summary.converged
        assert summary.convergence_round == 1
        assert summary.convergence_time_s == pytest.approx(4.0)
        assert summary.global_energy_j == pytest.approx(160.0)
        assert summary.total_time_s == pytest.approx(8.0)

    def test_summary_without_convergence_uses_all_rounds(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        result.append(_record(0, 0.5))
        summary = result.summary()
        assert not summary.converged
        assert summary.convergence_time_s == pytest.approx(2.0)

    def test_empty_result_raises(self):
        with pytest.raises(SimulationError):
            SimulationResult("random", "cnn-mnist", 0.95).summary()

    def test_selection_history(self):
        result = SimulationResult("random", "cnn-mnist", 0.95)
        result.append(_record(0, 0.5))
        assert result.selection_history() == [(0, 1)]


class TestFLSimulation:
    def test_run_round_produces_consistent_record(self, small_environment, small_backend):
        simulation = FLSimulation(
            small_environment, RandomPolicy(), small_backend, max_rounds=5
        )
        record = simulation.run_round(0)
        assert len(record.selected_ids) == small_environment.global_params.num_participants
        assert record.round_time_s > 0
        assert record.global_energy_j > record.participant_energy_j > 0
        assert 0.0 <= record.accuracy <= 1.0

    def test_run_stops_at_convergence(self, small_environment, small_backend):
        simulation = FLSimulation(
            small_environment,
            RandomPolicy(),
            small_backend,
            max_rounds=200,
            target_accuracy=0.5,
        )
        result = simulation.run()
        assert result.converged_round is not None
        assert result.num_rounds == result.converged_round + 1
        assert result.final_accuracy >= 0.5

    def test_run_respects_max_rounds(self, small_environment):
        backend = build_surrogate_backend(small_environment)
        simulation = FLSimulation(
            small_environment,
            RandomPolicy(),
            backend,
            max_rounds=3,
            target_accuracy=0.999,
        )
        result = simulation.run()
        assert result.num_rounds == 3
        assert result.converged_round is None

    def test_stop_at_convergence_disabled(self, small_environment):
        backend = build_surrogate_backend(small_environment)
        simulation = FLSimulation(
            small_environment,
            RandomPolicy(),
            backend,
            max_rounds=30,
            target_accuracy=0.3,
            stop_at_convergence=False,
        )
        result = simulation.run()
        assert result.num_rounds == 30
        assert result.converged_round is not None

    def test_policy_selecting_nothing_is_an_error(self, small_environment, small_backend):
        class EmptyPolicy(RandomPolicy):
            name = "empty"

            def select(self, ctx):
                return SelectionDecision(participants=[])

        simulation = FLSimulation(small_environment, EmptyPolicy(), small_backend, max_rounds=2)
        with pytest.raises(SimulationError):
            simulation.run_round(0)

    def test_invalid_max_rounds(self, small_environment, small_backend):
        with pytest.raises(SimulationError):
            FLSimulation(small_environment, RandomPolicy(), small_backend, max_rounds=0)

    def test_target_accuracy_default_from_workload(self, small_environment, small_backend):
        simulation = FLSimulation(small_environment, RandomPolicy(), small_backend)
        assert simulation.target_accuracy == pytest.approx(
            min(
                small_environment.workload.target_accuracy,
                small_environment.config.target_accuracy,
            )
        )
