"""Pin the replicate axis to the solo runner: byte identity, grouping, routing.

The replicated driver must be a pure wall-clock optimisation: every seed's
``SimulationResult`` serialises to the exact bytes the solo run of that seed produces,
across static scenarios and ones with full fleet dynamics (availability, churn,
dropouts, slow faults).
"""

import numpy as np
import pytest

from repro.core.selection import RandomPolicy, StaticClusterPolicy
from repro.exceptions import SimulationError
from repro.experiments.runner import POLICY_SEED_OFFSET, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.sim.context import SelectionDecision
from repro.sim.replicated import ReplicatedSimulation
from repro.sim.round_engine import RoundEngine, execute_batch_replicated
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend

STATIC_SPEC = dict(workload="cnn-mnist", num_devices=60, max_rounds=6)
DYNAMIC_SPEC = dict(
    workload="cnn-mnist",
    num_devices=80,
    max_rounds=6,
    interference="heavy",
    network="variable",
    data_distribution="non_iid_50",
    availability="diurnal",
    churn_rate=0.02,
    dropout_rate=0.05,
    slow_fault_rate=0.05,
)


def _simulation(spec_kwargs, seed, policy_cls=RandomPolicy, stop_at_convergence=False):
    spec = ScenarioSpec(seed=seed, **spec_kwargs)
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = policy_cls(rng=np.random.default_rng(seed + POLICY_SEED_OFFSET))
    return FLSimulation(
        environment, policy, backend, stop_at_convergence=stop_at_convergence
    )


@pytest.mark.parametrize("spec_kwargs", [STATIC_SPEC, DYNAMIC_SPEC], ids=["static", "dynamics"])
def test_replicated_results_are_byte_identical_to_solo(spec_kwargs):
    seeds = [3, 4, 5, 6]
    solo = [_simulation(spec_kwargs, seed).run().to_json() for seed in seeds]
    replicated = FLSimulation.run_replicated(
        [_simulation(spec_kwargs, seed) for seed in seeds]
    )
    assert [result.to_json() for result in replicated] == solo


def test_replicated_respects_convergence_stopping():
    # With stop_at_convergence=True replicates may stop at different rounds; each must
    # still match its solo trajectory exactly.
    spec_kwargs = dict(STATIC_SPEC, max_rounds=30)
    seeds = [0, 1, 2]
    solo = [
        _simulation(spec_kwargs, seed, stop_at_convergence=True).run().to_json()
        for seed in seeds
    ]
    replicated = FLSimulation.run_replicated(
        [_simulation(spec_kwargs, seed, stop_at_convergence=True) for seed in seeds]
    )
    assert [result.to_json() for result in replicated] == solo


def test_replicated_rejects_learning_policies():
    from repro.core.controller import AutoFLPolicy

    spec = ScenarioSpec(seed=0, **STATIC_SPEC)
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = AutoFLPolicy(rng=np.random.default_rng(1))
    simulation = FLSimulation(environment, policy, backend)
    assert not simulation.replication_supported
    with pytest.raises(SimulationError, match="serially"):
        ReplicatedSimulation([simulation])


def test_replicated_rejects_empty():
    with pytest.raises(SimulationError, match="at least one"):
        ReplicatedSimulation([])


def test_execute_batch_replicated_groups_mixed_selection_sizes():
    # Replicates whose selections differ in size are stacked per size group; every
    # result must still be bitwise identical to its solo execute_batch call.
    environments = [
        build_environment(ScenarioSpec(seed=seed, **STATIC_SPEC)) for seed in range(4)
    ]
    engines = [RoundEngine(environment) for environment in environments]
    sizes = [10, 14, 10, 14]
    decisions = [
        SelectionDecision(participants=environment.fleet.device_ids[:size])
        for environment, size in zip(environments, sizes)
    ]
    conditions = [environment.sample_condition_arrays() for environment in environments]
    stacked = execute_batch_replicated(engines, decisions, conditions)
    for engine, decision, condition_arrays, batch in zip(
        engines, decisions, conditions, stacked
    ):
        solo = engine.execute_batch(decision, condition_arrays)
        assert np.array_equal(batch.compute_j, solo.compute_j)
        assert np.array_equal(batch.communication_j, solo.communication_j)
        assert np.array_equal(batch.waiting_j, solo.waiting_j)
        assert np.array_equal(batch.idle_j, solo.idle_j)
        assert batch.round_time_s == solo.round_time_s
        assert batch.participant_ids == solo.participant_ids


def test_run_experiment_routes_seed_replicas_through_replicate_axis():
    scenario = ScenarioSpec(**STATIC_SPEC)
    replicated = run_experiment(
        ExperimentSpec(
            scenario=scenario, policy="fedavg-random", n_seeds=3, stop_at_convergence=False
        )
    )
    # The serial reference: each seed run alone.
    serial = [
        _simulation(STATIC_SPEC, seed).run().summary() for seed in range(3)
    ]
    assert list(replicated.summaries) == serial


def test_run_experiment_falls_back_to_serial_for_learning_policies():
    scenario = ScenarioSpec(**STATIC_SPEC)
    result = run_experiment(
        ExperimentSpec(scenario=scenario, policy="autofl", n_seeds=2)
    )
    assert len(result.summaries) == 2


def test_static_cluster_policy_rides_the_replicate_axis():
    seeds = [7, 8]
    solo = [
        _simulation(STATIC_SPEC, seed, policy_cls=lambda rng: StaticClusterPolicy("C3", rng=rng))
        .run()
        .to_json()
        for seed in seeds
    ]
    replicated = FLSimulation.run_replicated(
        [
            _simulation(
                STATIC_SPEC, seed, policy_cls=lambda rng: StaticClusterPolicy("C3", rng=rng)
            )
            for seed in seeds
        ]
    )
    assert [result.to_json() for result in replicated] == solo


class _BatchAwarePolicy(RandomPolicy):
    """Counts which feedback form the runner offers."""

    def __init__(self, rng, handle_batch):
        super().__init__(rng)
        self.handle_batch = handle_batch
        self.batch_calls = 0
        self.scalar_calls = 0

    def feedback_batch(self, ctx, decision, batch, training):
        self.batch_calls += 1
        return self.handle_batch

    def feedback(self, ctx, decision, execution, training):
        self.scalar_calls += 1


@pytest.mark.parametrize("handle_batch", [True, False])
def test_runner_offers_batch_feedback_first(handle_batch):
    spec = ScenarioSpec(seed=0, **STATIC_SPEC)
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment, aggregator=spec.aggregator)
    policy = _BatchAwarePolicy(np.random.default_rng(9), handle_batch)
    FLSimulation(
        environment, policy, backend, max_rounds=3, stop_at_convergence=False
    ).run()
    assert policy.batch_calls == 3
    # The scalar form is materialised only when the batch form was declined.
    assert policy.scalar_calls == (0 if handle_batch else 3)


def test_bench_replication_smoke():
    from repro.sim.bench import bench_replication

    result = bench_replication(num_devices=60, replicates=2, rounds=3)
    assert result.replicates == 2
    assert result.rounds == 3
    assert result.serial_wall_s > 0
    assert result.replicated_wall_s > 0
    assert result.speedup == pytest.approx(
        result.serial_wall_s / result.replicated_wall_s, rel=1e-6
    )
