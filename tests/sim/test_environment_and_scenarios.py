"""Tests for the edge-cloud environment and scenario builders."""

import pytest

from repro.config import GlobalParams, SimulationConfig
from repro.data.partition import DataDistribution
from repro.exceptions import ConfigurationError, SimulationError
from repro.interference.corunner import InterferenceScenario
from repro.network.bandwidth import NetworkScenario
from repro.sim.environment import EdgeCloudEnvironment
from repro.sim.scenarios import ScenarioSpec, build_environment, build_surrogate_backend


class TestEdgeCloudEnvironment:
    def test_default_construction(self, small_environment):
        env = small_environment
        assert len(env.fleet) == env.config.num_devices
        assert set(env.data_profiles) == set(env.fleet.device_ids)
        # Fleet devices received their shard sizes.
        assert all(device.num_local_samples > 0 for device in env.fleet)

    def test_round_conditions_cover_every_device(self, small_environment):
        conditions = small_environment.sample_round_conditions()
        assert set(conditions) == set(small_environment.fleet.device_ids)
        for condition in conditions.values():
            assert condition.bandwidth_mbps > 0

    def test_conditions_resampled_every_round(self, small_environment):
        first = small_environment.sample_round_conditions()
        second = small_environment.sample_round_conditions()
        changed = any(
            first[device_id].bandwidth_mbps != second[device_id].bandwidth_mbps
            for device_id in first
        )
        assert changed

    def test_missing_data_profile_rejected(self):
        config = SimulationConfig.small(num_devices=12, seed=0)
        with pytest.raises(SimulationError):
            EdgeCloudEnvironment(
                config=config,
                global_params=GlobalParams.from_setting("S4"),
                workload="cnn-mnist",
                data_profiles={0: None},  # type: ignore[dict-item]
            )

    def test_k_larger_than_fleet_rejected(self):
        config = SimulationConfig.small(num_devices=8, seed=0)
        with pytest.raises(SimulationError):
            EdgeCloudEnvironment(
                config=config,
                global_params=GlobalParams(num_participants=50),
                workload="cnn-mnist",
            )

    def test_unknown_device_profile_lookup(self, small_environment):
        with pytest.raises(SimulationError):
            small_environment.data_profile(10_000)

    def test_workload_without_num_classes_rejected(self, small_environment):
        # Synthesising data profiles needs the workload's label-space size; profiles
        # that leave it unset fail with a clear error instead of a silent default.
        workload = small_environment.workload.with_overrides(
            name="custom", num_classes=None
        )
        config = SimulationConfig.small(num_devices=12, seed=0)
        with pytest.raises(SimulationError, match="num_classes"):
            EdgeCloudEnvironment(
                config=config,
                global_params=GlobalParams.from_setting("S4"),
                workload=workload,
            )

    def test_builtin_workloads_declare_num_classes(self):
        from repro.nn.workloads import WORKLOAD_PROFILES

        assert {p.num_classes for p in WORKLOAD_PROFILES.values()} == {10, 40, 100}


class TestScenarioSpec:
    def test_default_spec_matches_paper_deployment(self):
        spec = ScenarioSpec()
        config = spec.simulation_config()
        assert config.num_devices == 200
        assert spec.global_params() == GlobalParams.from_setting("S3")

    def test_small_spec_scales_tiers(self):
        spec = ScenarioSpec(num_devices=40, seed=3)
        config = spec.simulation_config()
        assert config.num_devices == 40
        assert sum(config.tier_counts.values()) == 40

    def test_explicit_tier_counts(self):
        spec = ScenarioSpec(num_devices=6, tier_counts={"high": 2, "mid": 2, "low": 2})
        assert spec.simulation_config().tier_counts == {"high": 2, "mid": 2, "low": 2}

    def test_build_environment_honours_scenarios(self):
        spec = ScenarioSpec(
            workload="lstm-shakespeare",
            setting="S1",
            interference="heavy",
            network="weak",
            data_distribution="non_iid_75",
            num_devices=30,
            seed=1,
        )
        env = build_environment(spec)
        assert env.workload.name == "lstm-shakespeare"
        assert env.global_params == GlobalParams.from_setting("S1")
        assert env.interference.scenario is InterferenceScenario.HEAVY
        assert env.bandwidth.scenario is NetworkScenario.WEAK
        assert env.data_distribution is DataDistribution.NON_IID_75
        non_iid = sum(profile.is_non_iid for profile in env.data_profiles.values())
        assert non_iid == pytest.approx(0.75 * 30, abs=1)

    def test_invalid_setting_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(setting="S8").global_params()

    def test_backend_builder_uses_aggregator(self):
        spec = ScenarioSpec(num_devices=30, seed=0)
        env = build_environment(spec)
        backend = build_surrogate_backend(env, aggregator="fednova")
        assert 0.0 <= backend.accuracy <= 1.0

    def test_environment_determinism(self):
        spec = ScenarioSpec(num_devices=30, seed=42)
        first = build_environment(spec)
        second = build_environment(spec)
        assert [d.tier for d in first.fleet] == [d.tier for d in second.fleet]
        first_conditions = first.sample_round_conditions()
        second_conditions = second.sample_round_conditions()
        assert all(
            first_conditions[i].bandwidth_mbps == pytest.approx(second_conditions[i].bandwidth_mbps)
            for i in first_conditions
        )
