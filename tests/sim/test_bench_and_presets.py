"""Tests for the round-engine benchmark and the large-fleet scenario presets."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.registry import SCENARIOS
from repro.sim.bench import bench_fleet_size, run_roundengine_bench
from repro.sim.scenarios import ScenarioSpec, build_environment, get_scenario_preset


class TestBench:
    def test_writes_record_and_reports_speedup(self, tmp_path):
        output = tmp_path / "bench.json"
        record = run_roundengine_bench(
            sizes=(30,), repeats=2, seed=0, output=output
        )
        assert output.exists()
        on_disk = json.loads(output.read_text())
        assert on_disk["benchmark"] == "roundengine"
        assert on_disk["results"] == record["results"]
        # Provenance makes trajectories comparable across machines.
        provenance = on_disk["provenance"]
        import numpy
        import platform as platform_module

        assert provenance["python"] == platform_module.python_version()
        assert provenance["numpy"] == numpy.__version__
        assert provenance["platform"]
        assert "git_sha" in provenance
        (row,) = record["results"]
        assert row["num_devices"] == 30
        assert row["scalar_rounds_per_s"] > 0
        assert row["batch_rounds_per_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["batch_rounds_per_s"] / row["scalar_rounds_per_s"]
        )

    def test_no_output_file_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        record = run_roundengine_bench(sizes=(30,), repeats=1, output=None)
        assert not list(tmp_path.iterdir())
        assert record["results"]

    def test_rejects_tiny_fleets_and_empty_sizes(self):
        with pytest.raises(ConfigurationError):
            bench_fleet_size(num_devices=10)
        with pytest.raises(ConfigurationError):
            run_roundengine_bench(sizes=(), output=None)

    def test_rejects_non_positive_repeats(self):
        with pytest.raises(ConfigurationError):
            bench_fleet_size(num_devices=30, repeats=0)


class TestScenarioPresets:
    def test_registry_lists_presets(self):
        names = SCENARIOS.names()
        assert "paper-200" in names
        assert "fleet-1k" in names
        assert "fleet-10k" in names

    def test_presets_resolve_to_specs(self):
        assert get_scenario_preset("paper-200") == ScenarioSpec()
        fleet_1k = get_scenario_preset("1k")
        assert fleet_1k.num_devices == 1_000
        assert fleet_1k.vectorized_sampling
        assert get_scenario_preset("fleet-10k").num_devices == 10_000

    def test_large_fleet_environment_builds_and_samples(self):
        environment = build_environment(get_scenario_preset("fleet-1k"))
        assert len(environment.fleet) == 1_000
        conditions = environment.sample_condition_arrays()
        assert len(conditions) == 1_000
        assert np.all(conditions.bandwidth_mbps > 0)
        assert np.all((conditions.co_cpu_util >= 0) & (conditions.co_cpu_util <= 1))

    def test_vectorized_sampling_is_deterministic_per_seed(self):
        spec = get_scenario_preset("fleet-1k")
        first = build_environment(spec).sample_condition_arrays()
        second = build_environment(spec).sample_condition_arrays()
        assert np.array_equal(first.co_cpu_util, second.co_cpu_util)
        assert np.array_equal(first.bandwidth_mbps, second.bandwidth_mbps)
