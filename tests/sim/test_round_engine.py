"""Tests for the round execution engine (time, energy, stragglers)."""

import pytest

from repro.devices.device import ExecutionTarget, RoundConditions
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.round_engine import RoundEngine


@pytest.fixture
def engine(small_environment):
    return RoundEngine(small_environment)


@pytest.fixture
def clean_conditions(small_environment):
    return {
        device_id: RoundConditions(bandwidth_mbps=90.0)
        for device_id in small_environment.fleet.device_ids
    }


def _decision(environment, count=6):
    return SelectionDecision(participants=environment.fleet.device_ids[:count])


class TestEstimateDevice:
    def test_positive_times_and_energy(self, engine, small_environment):
        device = small_environment.fleet.devices[0]
        outcome = engine.estimate_device(device, device.default_target(), RoundConditions())
        assert outcome.compute_time_s > 0
        assert outcome.communication_time_s > 0
        assert outcome.energy.compute_j > 0
        assert outcome.energy.communication_j > 0

    def test_interference_increases_cpu_time(self, engine, small_environment):
        device = small_environment.fleet.devices[0]
        clean = engine.estimate_device(device, device.default_target(), RoundConditions())
        congested = engine.estimate_device(
            device, device.default_target(), RoundConditions(co_cpu_util=0.8, co_mem_util=0.6)
        )
        assert congested.compute_time_s > clean.compute_time_s

    def test_gpu_less_affected_by_interference(self, engine, small_environment):
        device = small_environment.fleet.devices[0]
        gpu_target = ExecutionTarget("gpu", device.spec.gpu.num_vf_steps - 1)
        conditions = RoundConditions(co_cpu_util=0.8, co_mem_util=0.6)
        clean_gpu = engine.estimate_device(device, gpu_target, RoundConditions())
        congested_gpu = engine.estimate_device(device, gpu_target, conditions)
        clean_cpu = engine.estimate_device(device, device.default_target(), RoundConditions())
        congested_cpu = engine.estimate_device(device, device.default_target(), conditions)
        gpu_penalty = congested_gpu.compute_time_s / clean_gpu.compute_time_s
        cpu_penalty = congested_cpu.compute_time_s / clean_cpu.compute_time_s
        assert gpu_penalty < cpu_penalty

    def test_weak_bandwidth_increases_communication(self, engine, small_environment):
        device = small_environment.fleet.devices[0]
        strong = engine.estimate_device(
            device, device.default_target(), RoundConditions(bandwidth_mbps=90.0)
        )
        weak = engine.estimate_device(
            device, device.default_target(), RoundConditions(bandwidth_mbps=15.0)
        )
        assert weak.communication_time_s > 3 * strong.communication_time_s
        assert weak.energy.communication_j > strong.energy.communication_j


class TestExecute:
    def test_round_time_is_slowest_retained_participant(
        self, engine, small_environment, clean_conditions
    ):
        decision = _decision(small_environment)
        execution = engine.execute(decision, clean_conditions)
        retained_times = [
            outcome.total_time_s
            for outcome in execution.outcomes.values()
            if not outcome.dropped
        ]
        assert execution.round_time_s == pytest.approx(max(retained_times))

    def test_every_device_has_an_energy_record(
        self, engine, small_environment, clean_conditions
    ):
        execution = engine.execute(_decision(small_environment), clean_conditions)
        assert set(execution.energy.per_device) == set(small_environment.fleet.device_ids)

    def test_non_participants_only_idle(self, engine, small_environment, clean_conditions):
        decision = _decision(small_environment)
        execution = engine.execute(decision, clean_conditions)
        for device_id in small_environment.fleet.device_ids:
            energy = execution.energy.device(device_id)
            if device_id in decision.participants:
                assert energy.active_j > 0
            else:
                assert energy.active_j == 0
                assert energy.idle_j > 0

    def test_global_energy_exceeds_participant_energy(
        self, engine, small_environment, clean_conditions
    ):
        execution = engine.execute(_decision(small_environment), clean_conditions)
        assert execution.energy.global_j > execution.participant_energy_j

    def test_straggler_dropped_under_extreme_conditions(self, engine, small_environment):
        decision = _decision(small_environment, count=8)
        conditions = {
            device_id: RoundConditions(bandwidth_mbps=90.0)
            for device_id in small_environment.fleet.device_ids
        }
        straggler = decision.participants[0]
        conditions[straggler] = RoundConditions(bandwidth_mbps=3.0, co_cpu_util=0.9)
        execution = engine.execute(decision, conditions)
        assert straggler in execution.dropped_ids
        assert straggler not in execution.participant_ids
        # The dropped straggler still consumed (truncated) energy.
        assert execution.energy.device(straggler).active_j > 0

    def test_custom_targets_respected(self, engine, small_environment, clean_conditions):
        participants = small_environment.fleet.device_ids[:3]
        targets = {}
        for device_id in participants:
            device = small_environment.fleet[device_id]
            targets[device_id] = ExecutionTarget("gpu", device.spec.gpu.num_vf_steps - 1)
        decision = SelectionDecision(participants=participants, targets=targets)
        execution = engine.execute(decision, clean_conditions)
        for device_id in participants:
            assert execution.outcomes[device_id].target.processor == "gpu"

    def test_empty_selection_rejected(self, engine, clean_conditions):
        with pytest.raises(SimulationError):
            engine.execute(SelectionDecision(participants=[]), clean_conditions)

    def test_invalid_cutoff_rejected(self, small_environment):
        with pytest.raises(SimulationError):
            RoundEngine(small_environment, straggler_cutoff=1.0)
