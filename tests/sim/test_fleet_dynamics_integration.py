"""Integration tests for fleet dynamics: equivalence, determinism and engine faults."""

import dataclasses

import numpy as np
import pytest

from repro.core.selection import RandomPolicy, make_policy
from repro.dynamics import DynamicsSpec, FleetDynamics
from repro.dynamics.faults import FaultDraw
from repro.exceptions import SimulationError
from repro.sim.context import SelectionDecision
from repro.sim.round_engine import RoundEngine
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import (
    ScenarioSpec,
    build_environment,
    build_surrogate_backend,
    get_scenario_preset,
)


def _run(spec: ScenarioSpec, policy: str = "fedavg-random", rounds: int = 6):
    environment = build_environment(spec)
    simulation = FLSimulation(
        environment,
        make_policy(policy, rng=np.random.default_rng(spec.seed + 10_000)),
        build_surrogate_backend(environment),
        max_rounds=rounds,
        stop_at_convergence=False,
    )
    return simulation.run()


class TestStaticEquivalence:
    """The default (always-on, zero-fault) configuration must reproduce the seeded
    static-fleet trajectories exactly — enabling the dynamics plumbing with a trivial
    configuration changes nothing but the ``num_online`` bookkeeping."""

    BASE = ScenarioSpec(num_devices=30, max_rounds=20, seed=11, setting="S4")

    def test_default_spec_builds_no_dynamics(self):
        assert build_environment(self.BASE).dynamics is None
        assert self.BASE.dynamics_spec().is_trivial

    @pytest.mark.parametrize("policy", ["fedavg-random", "autofl", "oparticipant"])
    def test_trivial_dynamics_trajectory_is_bit_identical(self, policy):
        static = _run(self.BASE, policy=policy)

        environment = build_environment(self.BASE)
        assert environment.dynamics is None
        environment.dynamics = FleetDynamics()  # Explicit always-on, no faults.
        environment.dynamics.bind(
            num_devices=len(environment.fleet),
            tier_codes=np.zeros(len(environment.fleet), dtype=np.int64),
            device_ids=np.array(environment.fleet.device_ids),
            seed=999,
        )
        simulation = FLSimulation(
            environment,
            make_policy(policy, rng=np.random.default_rng(self.BASE.seed + 10_000)),
            build_surrogate_backend(environment),
            max_rounds=6,
            stop_at_convergence=False,
        )
        dynamic = simulation.run()

        for static_record, dynamic_record in zip(static.records, dynamic.records):
            assert dynamic_record.num_online == 30
            # Everything except the online bookkeeping matches bit for bit.
            assert dataclasses.replace(dynamic_record, num_online=None) == static_record

    def test_same_seed_same_records(self):
        first = _run(self.BASE)
        second = _run(self.BASE)
        assert first.records == second.records


class TestDynamicTrajectories:
    FLAKY = ScenarioSpec(
        num_devices=30,
        max_rounds=20,
        seed=3,
        setting="S4",
        availability="bernoulli",
        dropout_rate=0.2,
        slow_fault_rate=0.1,
    )

    def test_faults_and_availability_observed(self):
        result = _run(self.FLAKY, rounds=10)
        assert result.total_fault_failures > 0
        assert all(count is not None and count <= 30 for count in result.online_history)
        assert result.mean_num_online < 30

    def test_dropout_streams_deterministic_per_seed(self):
        first = _run(self.FLAKY, rounds=8)
        second = _run(self.FLAKY, rounds=8)
        assert first.records == second.records
        shifted = _run(dataclasses.replace(self.FLAKY, seed=4), rounds=8)
        assert [r.failed_ids for r in shifted.records] != [
            r.failed_ids for r in first.records
        ]

    def test_failed_devices_are_not_aggregated_or_redropped(self):
        result = _run(self.FLAKY, rounds=10)
        for record in result.records:
            assert set(record.failed_ids) <= set(record.selected_ids)
            assert not set(record.failed_ids) & set(record.dropped_ids)
            assert record.num_aggregated >= 0

    @pytest.mark.parametrize("policy", ["autofl", "ofl", "cluster-c3"])
    def test_policies_select_only_online_devices(self, policy):
        spec = dataclasses.replace(self.FLAKY, availability="markov")
        environment = build_environment(spec)
        simulation = FLSimulation(
            environment,
            make_policy(policy, rng=np.random.default_rng(7)),
            build_surrogate_backend(environment),
            max_rounds=6,
            stop_at_convergence=False,
        )
        # The engine raises SimulationError if a policy ever picks an offline device,
        # so a clean run is itself the assertion; check the masks were real too.
        result = simulation.run()
        assert min(count for count in result.online_history) < 30

    def test_churn_heavy_preset_runs_and_records_events(self):
        spec = dataclasses.replace(
            get_scenario_preset("churn-heavy"), num_devices=30, seed=1
        )
        environment = build_environment(spec)
        simulation = FLSimulation(
            environment,
            RandomPolicy(rng=np.random.default_rng(0)),
            build_surrogate_backend(environment),
            max_rounds=15,
            stop_at_convergence=False,
        )
        simulation.run()
        assert environment.dynamics.churn_events  # Devices left/joined mid-job.

    def test_diurnal_preset_small_variant_oscillates(self):
        spec = dataclasses.replace(
            get_scenario_preset("diurnal-1k"), num_devices=100, seed=0
        )
        result = _run(spec, rounds=30)
        counts = [count for count in result.online_history]
        assert max(counts) - min(counts) > 10  # The sine wave is visible.


class TestEngineFaults:
    @pytest.fixture
    def engine_setup(self, small_environment):
        engine = RoundEngine(small_environment)
        condition_arrays = small_environment.sample_condition_arrays()
        conditions = condition_arrays.to_mapping(small_environment.fleet.device_ids)
        participants = small_environment.fleet.device_ids[:8]
        decision = SelectionDecision(participants=participants)
        return engine, decision, conditions, condition_arrays

    def test_scalar_batch_equivalence_with_faults(self, engine_setup):
        engine, decision, conditions, condition_arrays = engine_setup
        rng = np.random.default_rng(0)
        draw = FaultDraw(
            upload_failure=rng.random(8) < 0.4,
            compute_slowdown=np.where(rng.random(8) < 0.4, 5.0, 1.0),
        )
        batch = engine.execute_batch(decision, condition_arrays, faults=draw)
        scalar = engine.execute(
            decision, conditions, faults=draw.to_mapping(decision.participants)
        )
        assert batch.participant_ids == scalar.participant_ids
        assert batch.dropped_ids == scalar.dropped_ids
        assert batch.failed_ids == scalar.failed_ids
        assert batch.round_time_s == pytest.approx(scalar.round_time_s, abs=1e-9)
        converted = batch.to_execution()
        for device_id, outcome in converted.outcomes.items():
            reference = scalar.outcomes[device_id]
            assert outcome.compute_time_s == pytest.approx(
                reference.compute_time_s, abs=1e-9
            )
            assert outcome.communication_time_s == pytest.approx(
                reference.communication_time_s, abs=1e-9
            )
            assert outcome.energy.total_j == pytest.approx(
                reference.energy.total_j, rel=1e-9
            )
        assert converted.energy.global_j == pytest.approx(
            scalar.energy.global_j, rel=1e-9
        )

    @pytest.mark.parametrize(
        "with_faults,with_mask",
        [(False, True), (True, True), (True, False)],
        ids=["mask-only", "faults-and-mask", "heavy-faults"],
    )
    def test_scalar_batch_equivalence_across_dynamics_paths(
        self, engine_setup, small_environment, with_faults, with_mask
    ):
        """PR 3 pinned only the always-on/no-fault path; the fault-injection and
        partial-availability paths must agree between the two engines to 1e-9 too."""
        engine, decision, conditions, condition_arrays = engine_setup
        rng = np.random.default_rng(42)
        draw = None
        if with_faults:
            draw = FaultDraw(
                upload_failure=rng.random(8) < 0.5,
                compute_slowdown=np.where(rng.random(8) < 0.5, 6.0, 1.0),
            )
        online_mask = None
        if with_mask:
            # Everyone selected stays online; a third of the rest goes offline.
            online_mask = np.ones(len(small_environment.fleet), dtype=bool)
            rows = small_environment.fleet_arrays.rows_for(decision.participants)
            offline = rng.random(len(online_mask)) < 0.33
            offline[rows] = False
            online_mask[offline] = False

        batch = engine.execute_batch(
            decision, condition_arrays, faults=draw, online_mask=online_mask
        )
        scalar = engine.execute(
            decision,
            conditions,
            faults=None if draw is None else draw.to_mapping(decision.participants),
            online_mask=online_mask,
        )
        assert batch.participant_ids == scalar.participant_ids
        assert batch.dropped_ids == scalar.dropped_ids
        assert batch.failed_ids == scalar.failed_ids
        assert batch.round_time_s == pytest.approx(scalar.round_time_s, abs=1e-9)
        converted = batch.to_execution()
        for device_id, outcome in converted.outcomes.items():
            reference = scalar.outcomes[device_id]
            assert outcome.compute_time_s == pytest.approx(
                reference.compute_time_s, abs=1e-9
            )
            assert outcome.communication_time_s == pytest.approx(
                reference.communication_time_s, abs=1e-9
            )
            assert outcome.energy.compute_j == pytest.approx(
                reference.energy.compute_j, rel=1e-9, abs=1e-9
            )
            assert outcome.energy.communication_j == pytest.approx(
                reference.energy.communication_j, rel=1e-9, abs=1e-9
            )
            assert outcome.energy.idle_j == pytest.approx(
                reference.energy.idle_j, rel=1e-9, abs=1e-9
            )
        # The fleet-wide idle account (incl. the offline zeroing) must agree per device.
        for device_id, scalar_energy in scalar.energy.per_device.items():
            batch_energy = converted.energy.device(device_id)
            assert batch_energy.idle_j == pytest.approx(
                scalar_energy.idle_j, rel=1e-9, abs=1e-9
            )
        assert converted.energy.global_j == pytest.approx(
            scalar.energy.global_j, rel=1e-9
        )
        assert converted.energy.participant_j == pytest.approx(
            scalar.energy.participant_j, rel=1e-9
        )

    def test_upload_failure_wastes_compute_but_not_radio(self, engine_setup):
        engine, decision, _conditions, condition_arrays = engine_setup
        draw = FaultDraw.none(8)
        clean = engine.execute_batch(decision, condition_arrays, faults=draw)
        failing = FaultDraw(
            upload_failure=np.array([True] + [False] * 7),
            compute_slowdown=np.ones(8),
        )
        faulty = engine.execute_batch(decision, condition_arrays, faults=failing)
        assert faulty.failed_ids == [decision.participants[0]]
        assert decision.participants[0] not in faulty.participant_ids
        assert faulty.communication_j[0] == 0.0
        assert faulty.communication_time_s[0] == 0.0
        assert faulty.compute_j[0] > 0.0  # The wasted local training is still charged.
        assert clean.communication_j[0] > 0.0

    def test_slow_fault_can_turn_participant_into_straggler(self, engine_setup):
        engine, decision, _conditions, condition_arrays = engine_setup
        slowdown = np.ones(8)
        slowdown[0] = 50.0
        draw = FaultDraw(upload_failure=np.zeros(8, dtype=bool), compute_slowdown=slowdown)
        execution = engine.execute_batch(decision, condition_arrays, faults=draw)
        assert decision.participants[0] in execution.dropped_ids

    def test_offline_selection_rejected(self, engine_setup):
        engine, decision, conditions, condition_arrays = engine_setup
        online_mask = np.ones(len(condition_arrays), dtype=bool)
        online_mask[0] = False  # Fleet row 0 is the first participant.
        with pytest.raises(SimulationError, match="offline"):
            engine.execute_batch(decision, condition_arrays, online_mask=online_mask)
        with pytest.raises(SimulationError, match="offline"):
            engine.execute(decision, conditions, online_mask=online_mask)

    def test_offline_devices_draw_no_idle_energy(self, engine_setup, small_environment):
        engine, decision, _conditions, condition_arrays = engine_setup
        online_mask = np.ones(len(condition_arrays), dtype=bool)
        offline_row = len(online_mask) - 1  # Not among the selected first 8 rows.
        online_mask[offline_row] = False
        gated = engine.execute_batch(
            decision, condition_arrays, online_mask=online_mask
        )
        ungated = engine.execute_batch(decision, condition_arrays)
        assert gated.idle_j[offline_row] == 0.0
        assert ungated.idle_j[offline_row] > 0.0
        assert gated.global_energy_j < ungated.global_energy_j

    def test_misaligned_fault_draw_rejected(self, engine_setup):
        engine, decision, _conditions, condition_arrays = engine_setup
        with pytest.raises(SimulationError, match="align"):
            engine.execute_batch(decision, condition_arrays, faults=FaultDraw.none(3))


class TestDynamicsSpecOnScenario:
    def test_scenario_fields_flow_into_dynamics_spec(self):
        spec = ScenarioSpec(
            availability="markov",
            churn_rate=0.1,
            dropout_rate=0.2,
            tier_dropout_rates={"low": 0.5},
        )
        dynamics_spec = spec.dynamics_spec()
        assert dynamics_spec == DynamicsSpec(
            availability="markov",
            churn_rate=0.1,
            dropout_rate=0.2,
            tier_dropout_rates={"low": 0.5},
        )
        assert not dynamics_spec.is_trivial

    def test_presets_register_dynamics(self):
        assert get_scenario_preset("flaky-fleet").dropout_rate > 0
        assert get_scenario_preset("diurnal-1k").availability == "diurnal"
        assert get_scenario_preset("churn-heavy").churn_rate > 0
