"""Tests for the metrics registry: instruments, quantiles, merge and exposition."""

import json
import math
import threading

import numpy as np
import pytest

from urllib.error import HTTPError
from urllib.request import urlopen

from repro.exceptions import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    metrics_table_rows,
    quantile_from_buckets,
    read_snapshot,
    render_prometheus,
    write_snapshot,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_accumulates_per_label_series(self, registry):
        counter = registry.counter("jobs_total", help="Jobs.")
        counter.inc(state="done")
        counter.inc(2.5, state="done")
        counter.inc(state="failed")
        assert counter.value(state="done") == pytest.approx(3.5)
        assert counter.value(state="failed") == pytest.approx(1.0)
        assert counter.value(state="absent") == 0.0

    def test_label_order_is_irrelevant(self, registry):
        counter = registry.counter("c")
        counter.inc(a=1, b=2)
        assert counter.value(b=2, a=1) == pytest.approx(1.0)

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(TelemetryError, match="cannot decrease"):
            registry.counter("c").inc(-1.0)

    def test_get_or_create_returns_the_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("c")
        with pytest.raises(TelemetryError, match="already registered as a counter"):
            registry.gauge("c")


class TestGauge:
    def test_set_is_last_write_wins(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value() == pytest.approx(1.0)

    def test_unset_series_reads_nan(self, registry):
        assert math.isnan(registry.gauge("depth").value(state="queued"))


class TestHistogram:
    def test_count_sum_and_bucketing(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(107.0)
        # +Inf is appended implicitly, so the out-of-range observation is retained.
        assert histogram.quantile(1.0) == pytest.approx(5.0)  # +Inf reports last bound

    def test_quantiles_match_numpy_at_bucket_boundaries(self, registry):
        # 90 values of 1.0 and 10 of 2.0 under bounds (1, 2, 5): every requested
        # quantile lands exactly on a bucket boundary, where the cumulative-count
        # rule and numpy's linear-interpolation percentile agree exactly.
        values = [1.0] * 90 + [2.0] * 10
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 5.0))
        for value in values:
            histogram.observe(value)
        for q in (0.50, 0.95, 0.99):
            assert histogram.quantile(q) == pytest.approx(
                float(np.percentile(values, q * 100))
            )

    def test_empty_series_quantile_is_nan(self, registry):
        assert math.isnan(registry.histogram("lat").quantile(0.5))
        assert math.isnan(quantile_from_buckets((1.0, math.inf), (0, 0), 0.5))

    def test_per_label_series_are_independent(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        histogram.observe(0.5, state="done")
        histogram.observe(8.0, state="failed")
        assert histogram.count(state="done") == 1
        assert histogram.quantile(0.5, state="failed") == pytest.approx(10.0)

    def test_no_buckets_rejected(self, registry):
        with pytest.raises(TelemetryError, match="at least one bucket"):
            registry.histogram("lat", buckets=())


class TestDisabledRegistry:
    def test_mutations_are_no_ops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(1.0)
        assert registry.counter("c").value() == 0.0
        assert registry.histogram("h").count() == 0
        # Instruments register (cheap, happens once) but record nothing.
        assert registry.snapshot() == []

    def test_merge_works_even_when_disabled(self, registry):
        registry.counter("c").inc(2.0, policy="x")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        target = MetricsRegistry(enabled=False)
        target.merge(registry.snapshot())
        target.merge(registry.snapshot())
        assert target.counter("c").value(policy="x") == pytest.approx(4.0)
        assert target.histogram("h").count() == 2


class TestSnapshotAndMerge:
    def test_snapshot_is_sorted_and_json_able(self, registry):
        registry.counter("b").inc()
        registry.counter("a").inc(tier="hi")
        registry.histogram("m", buckets=(1.0,)).observe(0.5)
        entries = registry.snapshot()
        assert [entry["name"] for entry in entries] == ["a", "b", "m"]
        json.dumps(entries)  # must round-trip through JSON unaided

    def test_merge_semantics_per_kind(self, registry):
        registry.counter("c").inc(3.0)
        registry.gauge("g").set(7.0)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        registry.merge(snapshot)
        assert registry.counter("c").value() == pytest.approx(6.0)  # counters add
        assert registry.gauge("g").value() == pytest.approx(7.0)  # gauges overwrite
        assert registry.histogram("h").count() == 2  # histograms add

    def test_merge_rejects_mismatched_bucket_bounds(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = registry.snapshot()  # three buckets: 1, 2, +Inf
        other = MetricsRegistry()
        other.histogram("h", buckets=(1.0,))  # two buckets: 1, +Inf
        with pytest.raises(TelemetryError, match="cannot merge snapshot"):
            other.merge(snapshot)

    def test_merge_rejects_unknown_kind(self, registry):
        with pytest.raises(TelemetryError, match="unknown instrument kind"):
            registry.merge([{"name": "x", "kind": "summary"}])

    def test_snapshot_file_roundtrip(self, registry, tmp_path):
        registry.counter("c").inc(5.0, policy="autofl")
        path = tmp_path / "metrics.json"
        write_snapshot(registry, path)
        payload = read_snapshot(path)
        restored = MetricsRegistry()
        restored.merge(payload["metrics"])
        assert restored.counter("c").value(policy="autofl") == pytest.approx(5.0)

    def test_read_snapshot_rejects_corruption(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{not json")
        with pytest.raises(TelemetryError, match="corrupt"):
            read_snapshot(path)
        path.write_text('{"no_metrics": 1}')
        with pytest.raises(TelemetryError, match="no 'metrics' key"):
            read_snapshot(path)

    def test_concurrent_observes_are_not_lost(self, registry):
        counter = registry.counter("c")
        histogram = registry.histogram("h", buckets=(10.0,))

        def spam():
            for index in range(500):
                counter.inc(worker="w")
                histogram.observe(float(index % 3))

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == pytest.approx(2000.0)
        assert histogram.count() == 2000


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("jobs_total", help="All jobs.").inc(2.0, state="done")
        registry.gauge("depth").set(3.0)
        text = render_prometheus(registry)
        assert "# HELP jobs_total All jobs.\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert 'jobs_total{state="done"} 2\n' in text
        assert "depth 3\n" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 99.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="1"} 2\n' in text
        assert 'lat_bucket{le="2"} 3\n' in text
        assert 'lat_bucket{le="+Inf"} 4\n' in text
        assert "lat_count 4\n" in text
        assert "lat_sum 101.6\n" in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("c").inc(label='say "hi"\nthere\\')
        text = render_prometheus(registry)
        assert 'c{label="say \\"hi\\"\\nthere\\\\"} 1\n' in text


class TestMetricsServer:
    def test_scrape_healthz_and_refresh_hook(self, registry):
        registry.counter("c").inc(2.0)
        refreshed = []
        server = MetricsServer(
            registry, port=0, refresh=lambda: refreshed.append(True)
        ).start()
        try:
            with urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
            assert "c 2\n" in body
            assert "version=0.0.4" in content_type
            assert refreshed  # the refresh hook ran before the scrape
            with urlopen(f"http://{server.host}:{server.port}/healthz", timeout=5) as response:
                assert response.read() == b"ok\n"
            with pytest.raises(HTTPError):
                urlopen(f"http://{server.host}:{server.port}/nope", timeout=5)
        finally:
            server.close()


class TestTableRows:
    def test_rows_cover_scalars_and_histograms(self, registry):
        registry.counter("c").inc(2.0)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        rows = metrics_table_rows(registry.snapshot())
        by_name = {row[0]: row for row in rows}
        assert by_name["c"][3] == "2"
        assert by_name["h"][4] == 1  # count column
        assert by_name["h"][6] == "2"  # p50 column
