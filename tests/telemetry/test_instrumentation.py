"""Engine-instrumentation tests: enabled telemetry changes nothing but the metrics,
spans line up with the round phases, and the disabled path is effectively free."""

import time
from dataclasses import replace

import numpy as np

from repro import telemetry
from repro.core.selection import make_policy
from repro.sim.runner import FLSimulation
from repro.sim.scenarios import (
    ScenarioSpec,
    build_environment,
    build_surrogate_backend,
    get_scenario_preset,
)

ROUNDS = 4


def _run(enabled: bool, rounds: int = ROUNDS, devices: int = 25):
    telemetry.reset()
    telemetry.configure(enabled=enabled)
    spec = ScenarioSpec(num_devices=devices, max_rounds=rounds, seed=13, setting="S4")
    environment = build_environment(spec)
    simulation = FLSimulation(
        environment,
        make_policy("fedavg-random", rng=np.random.default_rng(spec.seed)),
        build_surrogate_backend(environment),
        max_rounds=rounds,
        stop_at_convergence=False,
    )
    return simulation.run()


def _trajectory(result):
    return [
        (
            record.round_index,
            record.selected_ids,
            record.dropped_ids,
            record.round_time_s,
            record.participant_energy_j,
            record.global_energy_j,
            record.accuracy,
        )
        for record in result.records
    ]


class TestEnabledEquivalence:
    def test_trajectories_identical_with_and_without_telemetry(self):
        # Telemetry only reads clocks, never RNG state, so enabling it must leave
        # every simulated quantity bit-identical (the committed goldens stay valid).
        baseline = _run(enabled=False)
        instrumented = _run(enabled=True)
        assert _trajectory(baseline) == _trajectory(instrumented)

    def test_span_counts_match_rounds_times_phases(self):
        _run(enabled=True)
        spans = telemetry.get_tracer().spans()
        phases = [span for span in spans if span.category == "engine"]
        names = sorted({span.name for span in phases})
        assert names == ["control_plane", "energy_math", "feedback", "simulation"]
        for phase in ("control_plane", "energy_math", "feedback"):
            assert sum(1 for span in phases if span.name == phase) == ROUNDS
        assert sum(1 for span in phases if span.name == "simulation") == 1
        assert len(phases) == ROUNDS * 3 + 1
        # Phase spans nest under the simulation span.
        simulation = next(span for span in phases if span.name == "simulation")
        children = [span for span in phases if span.name != "simulation"]
        assert all(span.parent_id == simulation.span_id for span in children)

    def test_round_metrics_are_emitted(self):
        result = _run(enabled=True)
        registry = telemetry.get_registry()
        assert registry.counter("repro_rounds_total").value(policy="fedavg-random") == ROUNDS
        selected = sum(len(record.selected_ids) for record in result.records)
        assert registry.counter("repro_selected_devices_total").value() == selected
        histogram = registry.histogram("repro_round_time_s")
        assert histogram.count(policy="fedavg-random") == ROUNDS
        assert registry.counter("repro_engine_batch_rounds_total").value() == ROUNDS

    def test_disabled_run_registers_no_series(self):
        _run(enabled=False)
        assert telemetry.get_registry().snapshot() == []
        assert telemetry.get_tracer().spans() == []


class TestDisabledOverhead:
    def test_overhead_below_two_percent_of_a_fleet1k_round(self):
        telemetry.reset()  # disabled
        assert not telemetry.enabled()

        preset = replace(get_scenario_preset("fleet-1k"), max_rounds=3)
        environment = build_environment(preset)
        simulation = FLSimulation(
            environment,
            make_policy("fedavg-random", rng=np.random.default_rng(preset.seed)),
            build_surrogate_backend(environment),
            max_rounds=3,
            stop_at_convergence=False,
        )
        start = time.perf_counter()
        simulation.run()
        round_time_s = (time.perf_counter() - start) / 3

        registry = telemetry.get_registry()
        tracer = telemetry.get_tracer()
        counter = registry.counter("bench_counter")
        histogram = registry.histogram("bench_histogram")
        reps = 2_000
        start = time.perf_counter()
        for _ in range(reps):
            # One simulated round's worth of disabled telemetry traffic.
            for _ in range(3):
                with tracer.span("phase", category="engine", round=0):
                    pass
            for _ in range(8):
                counter.inc(policy="p")
            for _ in range(8):
                histogram.observe(1.0, policy="p")
            _ = registry.enabled  # the guard read used by instrumented call sites
        per_round_overhead_s = (time.perf_counter() - start) / reps

        assert registry.snapshot() == []  # truly recorded nothing
        assert per_round_overhead_s < 0.02 * round_time_s, (
            f"disabled telemetry costs {per_round_overhead_s * 1e6:.1f}us per round, "
            f">= 2% of a {round_time_s * 1e3:.2f}ms fleet-1k round"
        )
