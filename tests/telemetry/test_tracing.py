"""Tests for the span tracer: nesting, sink files and Chrome-trace export."""

import json
import threading

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Span,
    SpanTracer,
    chrome_trace_events,
    load_spans,
    write_chrome_trace,
)
from repro.telemetry.tracing import _NULL_SPAN


@pytest.fixture
def tracer():
    return SpanTracer(enabled=True)


class TestSpanRecording:
    def test_nested_spans_link_parent_ids(self, tracer):
        with tracer.span("outer", category="engine") as outer:
            with tracer.span("inner", category="engine") as inner:
                pass
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_timestamps_and_attrs(self, tracer):
        with tracer.span("phase", category="engine", round=3):
            pass
        (span,) = tracer.spans()
        assert span.end_s >= span.start_s
        assert span.dur_s >= 0.0
        assert span.attrs == {"round": 3}

    def test_exception_is_annotated_not_suppressed(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("phase"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_record_manual_span(self, tracer):
        span = tracer.record("claim", category="scheduler", start_s=1.0, end_s=1.5, job="j")
        assert span.dur_s == pytest.approx(0.5)
        assert tracer.spans()[0].attrs == {"job": "j"}

    def test_threads_nest_independently(self, tracer):
        def worker():
            with tracer.span("thread_span"):
                pass

        with tracer.span("main_span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {span.name: span for span in tracer.spans()}
        # The thread's span must not adopt the main thread's open span as parent.
        assert by_name["thread_span"].parent_id is None

    def test_ring_buffer_caps_memory(self):
        tracer = SpanTracer(enabled=True, max_spans=5)
        for index in range(20):
            tracer.record(f"s{index}")
        assert len(tracer.spans()) == 5

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("x") is _NULL_SPAN  # no per-call allocation
        assert tracer.record("x") is None
        assert tracer.spans() == []

    def test_finished_spans_feed_the_metrics_registry(self):
        registry = MetricsRegistry(enabled=True)
        tracer = SpanTracer(registry=registry, enabled=True)
        with tracer.span("phase", category="engine"):
            pass
        assert registry.histogram("repro_span_s").count(name="phase", cat="engine") == 1


class TestSink:
    def test_sink_appends_jsonl_and_roundtrips(self, tracer, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer.set_sink(sink)
        with tracer.span("a", category="engine"):
            pass
        tracer.record("b", category="scheduler", start_s=1.0, end_s=2.0)
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == 1 for line in lines)
        spans = load_spans(sink)
        assert [span.name for span in spans] == ["a", "b"]
        assert spans[1].category == "scheduler"

    def test_load_spans_skips_bad_lines_and_missing_files(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        sink.write_text('{"name": "ok", "cat": "x"}\ngarbage\n\n')
        assert [span.name for span in load_spans(sink)] == ["ok"]
        assert load_spans(tmp_path / "absent.jsonl") == []

    def test_reset_detaches_the_sink(self, tracer, tmp_path):
        tracer.set_sink(tmp_path / "spans.jsonl")
        tracer.reset()
        assert tracer.sink_path is None
        tracer.record("after")  # must not write anywhere
        assert not (tmp_path / "spans.jsonl").exists()


class TestChromeTraceExport:
    def test_events_are_relative_microsecond_complete_events(self):
        spans = [
            Span("a", "engine", 1, None, start_s=10.0, end_s=10.5, pid=1, tid=2),
            Span("b", "scheduler", 2, 1, start_s=10.2, end_s=10.3, pid=1, tid=2),
        ]
        events = chrome_trace_events(spans)
        assert [event["name"] for event in events] == ["a", "b"]
        assert events[0] == {
            "name": "a", "cat": "engine", "ph": "X", "ts": 0.0, "dur": 500000.0,
            "pid": 1, "tid": 2, "args": {"span_id": 1},
        }
        assert events[1]["ts"] == pytest.approx(200000.0)
        assert events[1]["args"]["parent_id"] == 1

    def test_empty_span_list_yields_no_events(self):
        assert chrome_trace_events([]) == []

    def test_write_chrome_trace_file_shape(self, tmp_path):
        path = tmp_path / "trace.json"
        payload = write_chrome_trace([Span("a", "engine", 1, None, 0.0, 1.0)], path)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["displayTimeUnit"] == "ms"
        assert len(on_disk["traceEvents"]) == 1
