"""Telemetry tests share one process-wide registry/tracer: reset around each test."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()
