"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation: it runs the
corresponding experiment once (via ``benchmark.pedantic`` so pytest-benchmark reports the
end-to-end experiment runtime), prints the same rows/series the paper reports, and asserts
the qualitative *shape* of the result (who wins, roughly by how much, where the crossovers
fall).  Absolute magnitudes are not asserted — the substrate is a calibrated simulator, not
the authors' 200-instance EC2 testbed; see EXPERIMENTS.md for the measured-vs-paper values.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import run_policy_comparison  # noqa: E402
from repro.experiments.reporting import format_comparison, format_table  # noqa: E402
from repro.sim.scenarios import ScenarioSpec  # noqa: E402


def realistic_spec(workload: str = "cnn-mnist", **overrides) -> ScenarioSpec:
    """The 'realistic execution environment' used by the overview figures.

    Moderate co-running interference, variable network bandwidth and Non-IID(50 %) data —
    the in-the-field effects the paper's evaluation emphasises (Sections 5.2 and 6.1).
    """
    params = dict(
        workload=workload,
        setting="S3",
        interference="moderate",
        network="variable",
        data_distribution="non_iid_50",
        num_devices=100,
        max_rounds=200,
        seed=7,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


def comparison_rows(spec: ScenarioSpec, policies, max_rounds=None):
    """Run a policy comparison and index the normalised rows by policy name."""
    _results, rows = run_policy_comparison(spec, policies=tuple(policies), max_rounds=max_rounds)
    return {row.policy: row for row in rows}


def print_policy_table(title: str, rows_by_name: dict) -> None:
    """Print a paper-style normalised comparison table."""
    print(f"\n=== {title} ===")
    print(format_comparison(list(rows_by_name.values())))


def print_series(title: str, series: dict) -> None:
    """Print a named series (e.g. per-cluster PPW) as a single-row table."""
    print(f"\n=== {title} ===")
    print(format_table(list(series.keys()), [list(series.values())]))
