"""Figure 6: data heterogeneity degrades convergence and energy efficiency.

Paper claim: under random participant selection, increasing the fraction of non-IID devices
slows convergence dramatically — Non-IID(75 %) and Non-IID(100 %) do not converge within the
round budget — and the resulting energy-efficiency gap versus the ideal IID case exceeds 85 %.

The distribution axis is expressed as a declarative :class:`Sweep` executed by the
:class:`BatchRunner` — the figure is one grid, not four copy-pasted driver calls.
"""

from _helpers import print_series

from repro.experiments.runner import BatchRunner
from repro.experiments.spec import ExperimentSpec, Sweep
from repro.sim.scenarios import ScenarioSpec

DISTRIBUTIONS = ("iid", "non_iid_50", "non_iid_75", "non_iid_100")


def _run():
    base = ExperimentSpec(
        scenario=ScenarioSpec(
            workload="cnn-mnist",
            setting="S3",
            num_devices=200,
            max_rounds=300,
            seed=4,
        ),
        policy="fedavg-random",
    )
    report = BatchRunner().run(Sweep(base, data_distribution=list(DISTRIBUTIONS)))
    return {
        result.spec.scenario.data_distribution: result.summaries[0]
        for result in report.results
    }


def test_figure06_data_heterogeneity(benchmark):
    summaries = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_series(
        "Figure 6(a) — rounds to convergence (random selection)",
        {
            name: (summary.convergence_round if summary.converged else "no convergence")
            for name, summary in summaries.items()
        },
    )
    iid_energy = summaries["iid"].global_energy_j
    print_series(
        "Figure 6(b) — energy efficiency vs Ideal IID",
        {name: iid_energy / summary.global_energy_j for name, summary in summaries.items()},
    )

    # Convergence: IID fastest, Non-IID(50%) slower, Non-IID(75%/100%) never converge.
    assert summaries["iid"].converged
    assert summaries["non_iid_50"].converged
    assert summaries["non_iid_50"].convergence_round > summaries["iid"].convergence_round
    assert not summaries["non_iid_75"].converged
    assert not summaries["non_iid_100"].converged

    # Energy-efficiency gap between ideal IID and heavy heterogeneity exceeds 85 %.
    assert summaries["non_iid_75"].global_energy_j > 4.0 * iid_energy

    # Accuracy ordering follows the heterogeneity level.
    assert summaries["iid"].final_accuracy > summaries["non_iid_100"].final_accuracy
