"""Figure 8: overview result — AutoFL improves PPW, convergence time and accuracy.

Paper claim: across CNN-MNIST, LSTM-Shakespeare and MobileNet-ImageNet, AutoFL achieves
several-fold higher energy efficiency than the FedAvg-Random / Power / Performance baselines
while also converging faster and preserving accuracy, and approaches the oracle policies.
"""

from _helpers import comparison_rows, print_policy_table, realistic_spec

from repro.experiments.settings import EVALUATION_POLICIES

WORKLOADS = ("cnn-mnist", "lstm-shakespeare", "mobilenet-imagenet")


def _run():
    return {
        workload: comparison_rows(
            realistic_spec(workload, seed=4), EVALUATION_POLICIES, max_rounds=200
        )
        for workload in WORKLOADS
    }


def test_figure08_overview(benchmark):
    per_workload = benchmark.pedantic(_run, rounds=1, iterations=1)
    for workload, rows in per_workload.items():
        print_policy_table(f"Figure 8 — {workload}", rows)

        autofl = rows["autofl"]
        # AutoFL clearly beats the three baseline settings in global energy efficiency.
        assert autofl.ppw_global > 1.25
        assert autofl.ppw_global > rows["power"].ppw_global
        assert autofl.ppw_global > rows["fedavg-random"].ppw_global
        # Accuracy is maintained (within noise of the baseline).
        assert autofl.final_accuracy >= rows["fedavg-random"].final_accuracy - 0.03
        # Convergence is no slower than the random baseline.
        assert autofl.convergence_speedup > 0.95
        # The oracles bound the achievable efficiency and AutoFL moves toward them.
        assert rows["ofl"].ppw_global >= rows["oparticipant"].ppw_global * 0.95
        assert rows["ofl"].ppw_global > rows["performance"].ppw_global
