"""Figure 4: the optimal cluster of participants shifts with the FL global parameters.

Paper claim (CNN-MNIST): the optimal cluster moves from the high-end-heavy C1 under the
compute-heavy setting S1 toward mid/low-end-heavy clusters (C2, C3, C4) as the per-round
computation shrinks (S2-S4).  For LSTM-Shakespeare the high-end advantage is much smaller.
"""

from _helpers import print_series

from repro.experiments.harness import run_cluster_sweep
from repro.sim.scenarios import ScenarioSpec

SETTINGS = ("S1", "S2", "S3", "S4")
HIGH_END_CLUSTERS = {"C1", "C2"}


def _sweep(workload, setting):
    spec = ScenarioSpec(workload=workload, setting=setting, num_devices=200, seed=2)
    return run_cluster_sweep(spec, rounds=12)


def _run():
    return {
        "cnn-mnist": {setting: _sweep("cnn-mnist", setting) for setting in SETTINGS},
        "lstm-shakespeare": {setting: _sweep("lstm-shakespeare", setting) for setting in ("S1", "S3")},
    }


def test_figure04_optimal_cluster_vs_global_params(benchmark):
    sweeps = benchmark.pedantic(_run, rounds=1, iterations=1)
    cnn = sweeps["cnn-mnist"]
    for setting, series in cnn.items():
        print_series(f"Figure 4 — CNN-MNIST {setting} (PPW vs C0)", series)
    for setting, series in sweeps["lstm-shakespeare"].items():
        print_series(f"Figure 4 — LSTM-Shakespeare {setting} (PPW vs C0)", series)

    # S1 (large per-device computation): the high-end-heavy clusters are optimal.
    best_s1 = max(cnn["S1"], key=cnn["S1"].get)
    assert best_s1 in HIGH_END_CLUSTERS

    # As the computation per round decreases (S1 -> S3/S4) the high-end cluster loses its
    # advantage: C1's normalised PPW drops and the optimum moves to a mixed/mid-heavy cluster.
    assert cnn["S3"]["C1"] < cnn["S1"]["C1"]
    assert cnn["S4"]["C1"] < cnn["S1"]["C1"]
    assert max(cnn["S3"], key=cnn["S3"].get) not in HIGH_END_CLUSTERS
    assert max(cnn["S4"], key=cnn["S4"].get) not in HIGH_END_CLUSTERS

    # LSTM-Shakespeare: the high-end advantage under S1 is much smaller than CNN-MNIST's
    # because the recurrent layers are memory-bound (paper Section 3.1).
    lstm = sweeps["lstm-shakespeare"]
    assert lstm["S1"]["C1"] < cnn["S1"]["C1"]
    assert max(lstm["S3"], key=lstm["S3"].get) not in HIGH_END_CLUSTERS
