"""Figure 5: runtime variance shifts the optimal cluster of participants.

Paper claim (CNN-MNIST, S3): with no runtime variance a balanced cluster is optimal; with
on-device interference the optimum shifts toward high-end devices (C1); with a weak network
it shifts toward low-power devices (C5).
"""

from _helpers import print_series

from repro.experiments.harness import run_cluster_sweep
from repro.sim.scenarios import ScenarioSpec

SCENARIOS = {
    "ideal": dict(),
    "interference": dict(interference="heavy"),
    "weak-network": dict(network="weak"),
}


def _run():
    sweeps = {}
    for name, overrides in SCENARIOS.items():
        spec = ScenarioSpec(
            workload="cnn-mnist", setting="S3", num_devices=200, seed=2, **overrides
        )
        sweeps[name] = run_cluster_sweep(spec, rounds=12)
    return sweeps


def test_figure05_optimal_cluster_vs_runtime_variance(benchmark):
    sweeps = benchmark.pedantic(_run, rounds=1, iterations=1)
    for name, series in sweeps.items():
        print_series(f"Figure 5 — {name} (PPW vs C0)", series)

    ideal, interference, weak = sweeps["ideal"], sweeps["interference"], sweeps["weak-network"]

    # On-device interference favours high-end devices: C1's standing improves markedly
    # relative to the ideal environment and beats the low-power cluster C7.
    assert interference["C1"] > ideal["C1"]
    assert interference["C1"] > interference["C7"]

    # A weak network favours low-power devices: the all-high-end cluster C1 falls behind the
    # mid/low-power clusters (C4-C7), the opposite of the interference case.
    low_power_best = max(weak[name] for name in ("C4", "C5", "C6", "C7"))
    assert weak["C1"] < low_power_best
    assert weak["C1"] < interference["C1"]

    # The interference and weak-network optima differ, demonstrating the shift of Figure 5.
    assert max(interference, key=interference.get) != max(weak, key=weak.get)
