"""Figure 13: comparison with FedNova and FEDL.

Paper claim: FedNova and FEDL mitigate heterogeneity through gradient normalisation /
server-side relaxation but keep selecting participants at random, so AutoFL — which selects
participants and execution targets explicitly — achieves noticeably higher energy efficiency
(~49.8 % over FedNova, ~39.3 % over FEDL) and better convergence time.
"""

from _helpers import realistic_spec

from repro.experiments.harness import run_simulation
from repro.fl.metrics import relative_improvement

WORKLOADS = ("cnn-mnist", "lstm-shakespeare")


def _compare(workload, seed=21):
    """Run FedNova / FEDL (random selection) and AutoFL (FedAvg) on the same scenario."""
    results = {}
    for name, policy, aggregator in (
        ("fednova", "fedavg-random", "fednova"),
        ("fedl", "fedavg-random", "fedl"),
        ("autofl", "autofl", "fedavg"),
    ):
        spec = realistic_spec(workload, seed=seed, aggregator=aggregator)
        results[name] = run_simulation(spec, policy, max_rounds=250)
    return results


def _run():
    return {workload: _compare(workload) for workload in WORKLOADS}


def test_figure13_prior_work_comparison(benchmark):
    per_workload = benchmark.pedantic(_run, rounds=1, iterations=1)
    for workload, results in per_workload.items():
        summaries = {name: result.summary() for name, result in results.items()}
        fednova = summaries["fednova"]
        fedl = summaries["fedl"]
        autofl = summaries["autofl"]
        ppw_vs_fednova = relative_improvement(fednova.global_energy_j, autofl.global_energy_j)
        ppw_vs_fedl = relative_improvement(fedl.global_energy_j, autofl.global_energy_j)
        print(
            f"\n=== Figure 13 — {workload}: AutoFL PPW vs FedNova {ppw_vs_fednova:.2f}x, "
            f"vs FEDL {ppw_vs_fedl:.2f}x ==="
        )
        # AutoFL is more energy-efficient than both prior works (paper: +49.8 % / +39.3 %);
        # the margin is largest for the compute-heavy CNN workload.
        assert ppw_vs_fednova > 1.05, workload
        assert ppw_vs_fedl > 1.05, workload
        if workload == "cnn-mnist":
            assert ppw_vs_fednova > 1.2 and ppw_vs_fedl > 1.2
        # And time-to-convergence stays in the same range (the paper reports AutoFL is
        # strictly faster; in this simulator the LSTM workload converges in a comparable,
        # occasionally slightly longer, time).
        assert (
            autofl.convergence_speedup_reference_s
            <= fednova.convergence_speedup_reference_s * 1.3
        ), workload
        assert autofl.final_accuracy >= fednova.final_accuracy - 0.03, workload
