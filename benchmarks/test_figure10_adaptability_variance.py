"""Figure 10: AutoFL adapts to stochastic runtime variance.

Paper claim: with no variance, with on-device interference from co-running applications, and
with network variance, AutoFL consistently improves time-to-convergence and energy
efficiency over FedAvg-Random / Power / Performance and tracks the oracle OFL.
"""

from _helpers import comparison_rows, print_policy_table, realistic_spec

POLICIES = ("fedavg-random", "power", "performance", "autofl", "ofl")
SCENARIOS = {
    "no-variance": dict(interference="none", network="stable"),
    "interference": dict(interference="heavy", network="stable"),
    "network-variance": dict(interference="none", network="weak"),
}


def _run():
    return {
        name: comparison_rows(
            realistic_spec("cnn-mnist", seed=13, **overrides), POLICIES, max_rounds=250
        )
        for name, overrides in SCENARIOS.items()
    }


def test_figure10_adaptability_to_runtime_variance(benchmark):
    per_scenario = benchmark.pedantic(_run, rounds=1, iterations=1)
    for name, rows in per_scenario.items():
        print_policy_table(f"Figure 10 — {name}", rows)
        autofl = rows["autofl"]
        assert autofl.ppw_global > 1.15, name
        assert autofl.ppw_global > rows["power"].ppw_global, name
        assert autofl.ppw_global > rows["fedavg-random"].ppw_global, name
        assert autofl.final_accuracy >= rows["fedavg-random"].final_accuracy - 0.03, name
    # Under interference the gap over the random baseline is large (paper: ~5x).
    assert per_scenario["interference"]["autofl"].ppw_global > 1.5
