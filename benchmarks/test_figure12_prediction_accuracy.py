"""Figure 12: AutoFL tracks the decisions of the optimal policy (OFL).

Paper claim: after the reward converges, AutoFL's participant selections and execution-target
choices closely track the oracle's (≈94 % participant and ≈93 % target prediction accuracy),
and the learned tier mix follows the oracle's workload-dependent preferences.
"""

from _helpers import print_series, realistic_spec

from repro.experiments.harness import run_with_reference


def _run():
    return {
        workload: run_with_reference(
            realistic_spec(workload, num_devices=100, seed=5),
            policy_name="autofl",
            reference_name="ofl",
            rounds=80,
        )
        for workload in ("cnn-mnist", "lstm-shakespeare")
    }


def test_figure12_prediction_accuracy(benchmark):
    reports = benchmark.pedantic(_run, rounds=1, iterations=1)
    for workload, report in reports.items():
        print_series(
            f"Figure 12 — {workload} prediction accuracy",
            {
                "participant accuracy": report.participant_accuracy,
                "target accuracy": report.target_accuracy,
            },
        )
        print_series(f"Figure 12 — {workload} AutoFL tier mix", report.tier_composition)
        print_series(
            f"Figure 12 — {workload} OFL tier mix", report.reference_tier_composition
        )

        # After the warm-up window AutoFL's selections overlap with the oracle's well above
        # what random K-of-N selection would give (~K/N = 20 %), and the chosen execution
        # targets mostly agree.  The overlap is far below the paper's ~94 % — the coarse
        # Table 1 state bins cannot identify the oracle's exact per-device picks in this
        # simulator — see EXPERIMENTS.md for the discussion of this deviation.
        assert report.participant_accuracy > 0.25, workload
        assert report.target_accuracy > 0.5, workload
        # Tier mixes are proper distributions.
        assert abs(sum(report.tier_composition.values()) - 1.0) < 1e-6
        assert abs(sum(report.reference_tier_composition.values()) - 1.0) < 1e-6
