"""Figure 11: AutoFL adapts to data heterogeneity.

Paper claim: as the fraction of non-IID devices grows (Ideal IID, 50 %, 75 %, 100 %), the
baselines degrade badly — at 75 %/100 % they do not converge within the round budget — while
AutoFL keeps selecting useful participants and stays close to the oracle.  AutoFL's PPW gain
over FedAvg-Random grows with the heterogeneity level.
"""

from _helpers import comparison_rows, print_policy_table

from repro.sim.scenarios import ScenarioSpec

POLICIES = ("fedavg-random", "power", "performance", "autofl", "ofl")
DISTRIBUTIONS = ("iid", "non_iid_50", "non_iid_75", "non_iid_100")


def _spec(distribution):
    return ScenarioSpec(
        workload="cnn-mnist",
        setting="S3",
        num_devices=200,
        data_distribution=distribution,
        max_rounds=300,
        seed=4,
    )


def _run():
    return {
        distribution: comparison_rows(_spec(distribution), POLICIES, max_rounds=300)
        for distribution in DISTRIBUTIONS
    }


def test_figure11_adaptability_to_data_heterogeneity(benchmark):
    per_distribution = benchmark.pedantic(_run, rounds=1, iterations=1)
    for distribution, rows in per_distribution.items():
        print_policy_table(f"Figure 11 — {distribution}", rows)

    # AutoFL never loses to the random baseline, and its advantage grows with heterogeneity
    # up to the 75 % level (paper: 4.0x, 5.5x, 9.3x, 7.3x).
    assert per_distribution["iid"]["autofl"].ppw_global >= 1.0
    assert per_distribution["non_iid_50"]["autofl"].ppw_global > 1.8
    assert per_distribution["non_iid_75"]["autofl"].ppw_global > 3.0
    assert (
        per_distribution["non_iid_75"]["autofl"].ppw_global
        > per_distribution["non_iid_50"]["autofl"].ppw_global
        > per_distribution["iid"]["autofl"].ppw_global
    )

    # The random baseline fails to converge under heavy heterogeneity while AutoFL still
    # converges at 75 % by avoiding the non-IID devices.
    assert not per_distribution["non_iid_75"]["fedavg-random"].converged
    assert not per_distribution["non_iid_100"]["fedavg-random"].converged
    assert per_distribution["non_iid_75"]["autofl"].converged
    assert per_distribution["non_iid_75"]["autofl"].final_accuracy > 0.9

    # The oracle remains the upper bound at every heterogeneity level.
    for distribution, rows in per_distribution.items():
        assert rows["ofl"].ppw_global >= rows["autofl"].ppw_global * 0.9, distribution
