"""Figure 9: AutoFL adapts to different FL global parameter settings (S1-S4).

Paper claim: although the optimal participant cluster changes with (B, E, K), AutoFL beats
FedAvg-Random, Performance and Power in energy efficiency and convergence time for every
setting, and improves on participant-only optimisation by also choosing execution targets.
"""

from _helpers import comparison_rows, print_policy_table, realistic_spec

POLICIES = ("fedavg-random", "power", "performance", "oparticipant", "autofl")
SETTINGS = ("S1", "S2", "S3", "S4")


def _run():
    return {
        setting: comparison_rows(
            realistic_spec("cnn-mnist", setting=setting, seed=11), POLICIES, max_rounds=200
        )
        for setting in SETTINGS
    }


def test_figure09_adaptability_to_global_params(benchmark):
    per_setting = benchmark.pedantic(_run, rounds=1, iterations=1)
    for setting, rows in per_setting.items():
        print_policy_table(f"Figure 9 — CNN-MNIST {setting}", rows)
        autofl = rows["autofl"]
        assert autofl.ppw_global > 1.15, setting
        assert autofl.ppw_global > rows["power"].ppw_global, setting
        assert autofl.ppw_global > rows["fedavg-random"].ppw_global, setting
        assert autofl.final_accuracy >= rows["fedavg-random"].final_accuracy - 0.03, setting
