"""Figure 14: AutoFL outperforms FedNova and FEDL under runtime variance and heterogeneity.

Paper claim: even in the presence of on-device interference, network variance and data
heterogeneity, AutoFL achieves higher PPW than FedNova (+62.7 %) and FEDL (+48.8 %), because
normalising gradients does not remove the cost of randomly selected stragglers and non-IID
participants.
"""

from _helpers import print_series, realistic_spec

from repro.experiments.harness import run_simulation
from repro.fl.metrics import relative_improvement

SCENARIOS = {
    "interference": dict(interference="heavy", network="stable", data_distribution="non_iid_50"),
    "network-variance": dict(interference="none", network="weak", data_distribution="non_iid_50"),
    "heterogeneity": dict(
        interference="none", network="stable", data_distribution="non_iid_75"
    ),
}


def _compare(overrides, seed=23):
    results = {}
    for name, policy, aggregator in (
        ("fednova", "fedavg-random", "fednova"),
        ("fedl", "fedavg-random", "fedl"),
        ("autofl", "autofl", "fedavg"),
    ):
        spec = realistic_spec("cnn-mnist", seed=seed, aggregator=aggregator, **overrides)
        results[name] = run_simulation(spec, policy, max_rounds=300).summary()
    return results


def _run():
    return {name: _compare(overrides) for name, overrides in SCENARIOS.items()}


def test_figure14_prior_work_under_variance(benchmark):
    per_scenario = benchmark.pedantic(_run, rounds=1, iterations=1)
    for name, summaries in per_scenario.items():
        gains = {
            baseline: relative_improvement(
                summaries[baseline].global_energy_j, summaries["autofl"].global_energy_j
            )
            for baseline in ("fednova", "fedl")
        }
        print_series(f"Figure 14 — {name}: AutoFL PPW gain", gains)
        assert gains["fednova"] > 1.15, name
        assert gains["fedl"] > 1.15, name
        assert summaries["autofl"].final_accuracy >= summaries["fednova"].final_accuracy - 0.03
