"""Figure 15 and Section 6.4: AutoFL's learning convergence and runtime/memory overhead.

Paper claims: (1) the Q-learning reward converges within ~50-80 aggregation rounds, well
before FL itself converges; (2) sharing Q-tables across devices of the same performance
category speeds up learning at a small accuracy cost; (3) the per-round controller overhead
(state observation, selection, reward calculation, table update) is a negligible fraction of
an aggregation round, and the total Q-table memory footprint is tiny.
"""

import time

import numpy as np

from _helpers import print_series, realistic_spec

from repro.core.controller import AutoFLPolicy
from repro.core.qtable import QTableStore
from repro.sim.context import RoundContext
from repro.sim.round_engine import RoundEngine
from repro.sim.scenarios import build_environment, build_surrogate_backend

ROUNDS = 90


def _train_policy(sharing: str, seed: int = 3):
    spec = realistic_spec("cnn-mnist", num_devices=100, seed=seed)
    environment = build_environment(spec)
    backend = build_surrogate_backend(environment)
    policy = AutoFLPolicy(rng=np.random.default_rng(seed), qtable_sharing=sharing)
    engine = RoundEngine(environment)
    overhead_s = []
    for round_index in range(ROUNDS):
        conditions = environment.sample_round_conditions()
        ctx = RoundContext(round_index, environment, conditions, backend.accuracy)
        started = time.perf_counter()
        decision = policy.select(ctx)
        select_elapsed = time.perf_counter() - started
        execution = engine.execute(decision, conditions)
        training = backend.run_round(execution.participant_ids)
        started = time.perf_counter()
        policy.feedback(ctx, decision, execution, training)
        overhead_s.append(select_elapsed + (time.perf_counter() - started))
    rewards = policy.reward_history()
    return {
        "rewards": rewards,
        "mean_overhead_s": float(np.mean(overhead_s)),
        "qtable_entries": policy.agent.qtable_store.total_entries(),
        "num_tables": policy.agent.qtable_store.num_tables,
        "final_accuracy": backend.accuracy,
    }


def _run():
    return {
        "per-tier": _train_policy(QTableStore.PER_TIER),
        "per-device": _train_policy(QTableStore.PER_DEVICE),
    }


def _reward_convergence_round(rewards, window=10, tolerance=5.0):
    """First round after which the windowed mean reward stops improving by > tolerance."""
    means = [np.mean(rewards[i : i + window]) for i in range(0, len(rewards) - window)]
    final = means[-1]
    for index, value in enumerate(means):
        if final - value < tolerance:
            return index
    return len(rewards)


def test_figure15_learning_convergence_and_overhead(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    shared, per_device = results["per-tier"], results["per-device"]

    shared_convergence = _reward_convergence_round(shared["rewards"])
    per_device_convergence = _reward_convergence_round(per_device["rewards"])
    print_series(
        "Figure 15 — reward convergence round",
        {"shared Q-tables": shared_convergence, "per-device Q-tables": per_device_convergence},
    )
    print_series(
        "Section 6.4 — per-round controller overhead (ms)",
        {
            "shared": shared["mean_overhead_s"] * 1e3,
            "per-device": per_device["mean_overhead_s"] * 1e3,
        },
    )
    print_series(
        "Section 6.4 — Q-table entries",
        {"shared": shared["qtable_entries"], "per-device": per_device["qtable_entries"]},
    )

    # The reward improves over training and stabilises well within the round budget.
    for result in results.values():
        rewards = result["rewards"]
        assert len(rewards) == ROUNDS
        assert np.mean(rewards[-15:]) > np.mean(rewards[:15])
    assert shared_convergence <= ROUNDS - 10

    # Sharing Q-tables across a performance category shrinks the learned state (paper: the
    # shared mode trades a little accuracy for faster convergence and less memory).
    assert shared["num_tables"] < per_device["num_tables"]
    assert shared["qtable_entries"] <= per_device["qtable_entries"]

    # The controller overhead per round is far below any realistic round duration, and the
    # lookup tables are small (paper: ~0.5 ms and tens of MB for 200 devices).
    assert shared["mean_overhead_s"] < 0.25
    assert shared["qtable_entries"] < 1_000_000
