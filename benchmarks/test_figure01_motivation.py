"""Figure 1: judicious participant/target selection substantially improves PPW.

Paper claim: compared with random selection, selecting participants for performance
(``Performance``) and additionally selecting per-device execution targets (``OFL``) improves
FL energy efficiency by up to ~5.4x, and OFL dominates Performance.
"""

from _helpers import comparison_rows, print_policy_table, realistic_spec

POLICIES = ("fedavg-random", "performance", "ofl")
WORKLOADS = ("cnn-mnist", "lstm-shakespeare", "mobilenet-imagenet")


def _run():
    return {
        workload: comparison_rows(realistic_spec(workload), POLICIES, max_rounds=200)
        for workload in WORKLOADS
    }


def test_figure01_motivation(benchmark):
    per_workload = benchmark.pedantic(_run, rounds=1, iterations=1)
    for workload, rows in per_workload.items():
        print_policy_table(f"Figure 1 — {workload}", rows)
        # OFL (participants + execution targets) beats the random baseline by a wide margin
        # and also beats performance-only selection.
        assert rows["ofl"].ppw_global > 1.5
        assert rows["ofl"].ppw_global > rows["performance"].ppw_global
        assert rows["ofl"].ppw_local > rows["fedavg-random"].ppw_local
    # The largest observed improvement should be a multi-x factor (paper: up to 5.4x).
    best = max(rows["ofl"].ppw_global for rows in per_workload.values())
    assert best > 2.0
